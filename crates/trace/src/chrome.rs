//! Chrome Trace Event export: spans as `ph:"B"/"E"` duration events,
//! counter samples as `ph:"C"` counter tracks, and cross-worker message
//! flows as `ph:"s"/"f"` flow events, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The exporter consumes the same frozen structures the other exports do —
//! a [`SpanTree`], the [`CounterSample`]s of a [`crate::CounterTrack`],
//! and the [`FlowEvent`]s collected by a parallel run — so it composes
//! with any recording setup. Timestamps are normalized to the earliest
//! observation (the first event lands at `ts: 0.000`), which makes the
//! output *deterministic modulo timestamps*: two runs of the same program
//! differ only in `ts` values, never in event order, names, nesting, or
//! counter values (parallel runs additionally vary in interleaving; the
//! golden test pins a sorted structural projection instead).
//!
//! Format notes (the Trace Event Format is JSON-array based):
//!
//! * duration events carry `ph:"B"` (begin) / `ph:"E"` (end) and nest by
//!   emission order within one `pid`/`tid` pair — the tree is walked
//!   depth-first, so every `B` is closed by its own `E` after its children;
//! * every span lands on the `tid` lane of the worker that emitted it:
//!   worker `w` maps to `tid w+2` named `worker_w`, untagged (sequential /
//!   analyzer) spans map to `tid 1` named `slg-engine`;
//! * counter events carry `ph:"C"`; multiple keys in `args` render as a
//!   stacked series (the `worklist` track stacks `expands` over `returns`);
//!   worker-tagged samples get per-worker track names (`worker0.worklist`);
//! * flow events carry `ph:"s"` (start, on the sender's lane) and `ph:"f"`
//!   with `bp:"e"` (finish, on the receiver's lane), joined by `id`;
//! * `ts` is in fractional microseconds;
//! * `ph:"M"` metadata events name the process and each thread lane.

use crate::counter::CounterSample;
use crate::flow::FlowEvent;
use crate::json::escape;
use crate::span::SpanTree;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The `pid` stamped on every event: one logical process per export.
const PID: u32 = 1;

/// The `tid` of a span stream: one lane per parallel worker, with the
/// sequential/analyzer stream on lane 1.
fn lane(worker: Option<usize>) -> usize {
    match worker {
        None => 1,
        Some(w) => w + 2,
    }
}

/// The counter track names the export emits for untagged samples, in
/// emission order. The `worklist` track carries two stacked series
/// (`expands`, `returns`); the rest carry a single `value` series.
/// Worker-tagged samples emit the same tracks prefixed `worker{w}.`, plus
/// a `worker{w}.msgs_sent` track.
pub const CHROME_COUNTER_TRACKS: [&str; 4] = ["worklist", "tables", "answers", "table_bytes"];

fn push_duration_events(tree: &SpanTree, t0: u64, out: &mut Vec<String>) {
    let ts = |t_ns: u64| (t_ns.saturating_sub(t0)) as f64 / 1000.0;
    enum Step {
        Enter(usize),
        Exit(usize),
    }
    let mut stack: Vec<Step> = tree.roots.iter().rev().map(|&r| Step::Enter(r)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(i) => {
                let n = &tree.nodes[i];
                let mut e = format!(
                    "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"B\",\"ts\":{:.3},\
                     \"pid\":{PID},\"tid\":{}",
                    escape(&n.name),
                    ts(n.start_ns),
                    lane(n.worker)
                );
                if let Some(p) = &n.pred {
                    let _ = write!(e, ",\"args\":{{\"pred\":\"{}\"}}", escape(p));
                }
                e.push('}');
                out.push(e);
                stack.push(Step::Exit(i));
                for &c in n.children.iter().rev() {
                    stack.push(Step::Enter(c));
                }
            }
            Step::Exit(i) => {
                let n = &tree.nodes[i];
                out.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"E\",\"ts\":{:.3},\
                     \"pid\":{PID},\"tid\":{}}}",
                    escape(&n.name),
                    ts(n.start_ns + n.total_ns),
                    lane(n.worker)
                ));
            }
        }
    }
}

fn push_counter_events(counters: &[CounterSample], t0: u64, out: &mut Vec<String>) {
    for c in counters {
        let ts = (c.t_ns.saturating_sub(t0)) as f64 / 1000.0;
        let prefix = match c.worker {
            Some(w) => format!("worker{w}."),
            None => String::new(),
        };
        out.push(format!(
            "{{\"name\":\"{prefix}worklist\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{PID},\
             \"args\":{{\"expands\":{},\"returns\":{}}}}}",
            c.expands, c.returns
        ));
        for (name, value) in [
            ("tables", c.tables),
            ("answers", c.answers),
            ("table_bytes", c.table_bytes),
        ] {
            out.push(format!(
                "{{\"name\":\"{prefix}{name}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{PID},\
                 \"args\":{{\"value\":{value}}}}}"
            ));
        }
        // Message traffic only exists on worker-tagged (parallel) samples;
        // sequential exports keep exactly the four classic tracks.
        if c.worker.is_some() {
            out.push(format!(
                "{{\"name\":\"{prefix}msgs_sent\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{PID},\
                 \"args\":{{\"value\":{}}}}}",
                c.msgs_sent
            ));
        }
    }
}

fn push_flow_events(flows: &[FlowEvent], t0: u64, out: &mut Vec<String>) {
    for f in flows {
        let name = match f.kind {
            crate::flow::MsgKind::Call => "msg_call",
            crate::flow::MsgKind::Answer => "msg_answer",
        };
        out.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{},\"ts\":{:.3},\
             \"pid\":{PID},\"tid\":{}}}",
            f.id,
            (f.send_ns.saturating_sub(t0)) as f64 / 1000.0,
            lane(Some(f.from))
        ));
        out.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
             \"ts\":{:.3},\"pid\":{PID},\"tid\":{},\"args\":{{\"bytes\":{}}}}}",
            f.id,
            (f.recv_ns.saturating_sub(t0)) as f64 / 1000.0,
            lane(Some(f.to)),
            f.bytes
        ));
    }
}

/// Renders a span tree plus counter samples as one Chrome-trace JSON
/// document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Event order is deterministic: metadata events, then the span forest
/// depth-first (each span's `B`, its children, its `E`), then the counter
/// events in sample order with the track order of
/// [`CHROME_COUNTER_TRACKS`]. Trace viewers sort by `ts`, so grouping by
/// kind is purely for structural stability of the file.
pub fn chrome_trace(tree: &SpanTree, counters: &[CounterSample]) -> String {
    chrome_trace_with_flows(tree, counters, &[])
}

/// [`chrome_trace`] plus cross-worker message flows: each [`FlowEvent`]
/// becomes a `ph:"s"` event on the sender's lane and a matching `ph:"f"`
/// event on the receiver's, so trace viewers draw an arrow between the
/// two worker lanes. One `thread_name` metadata event names every lane
/// that appears in the export (spans, counters, or flows).
pub fn chrome_trace_with_flows(
    tree: &SpanTree,
    counters: &[CounterSample],
    flows: &[FlowEvent],
) -> String {
    let t0 = tree
        .nodes
        .iter()
        .map(|n| n.start_ns)
        .chain(counters.iter().map(|c| c.t_ns))
        .chain(flows.iter().map(|f| f.send_ns))
        .min()
        .unwrap_or(0);
    let workers: BTreeSet<usize> = tree
        .nodes
        .iter()
        .filter_map(|n| n.worker)
        .chain(counters.iter().filter_map(|c| c.worker))
        .chain(flows.iter().flat_map(|f| [f.from, f.to]))
        .collect();
    let mut events = vec![
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\
             \"args\":{{\"name\":\"tablog\"}}}}"
        ),
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\
             \"args\":{{\"name\":\"slg-engine\"}}}}",
            lane(None)
        ),
    ];
    for w in workers {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\
             \"args\":{{\"name\":\"worker_{w}\"}}}}",
            lane(Some(w))
        ));
    }
    push_duration_events(tree, t0, &mut events);
    push_counter_events(counters, t0, &mut events);
    push_flow_events(flows, t0, &mut events);
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MsgKind;
    use crate::json::{parse, JsonValue};
    use crate::span::{SpanEmitter, SpanRecorder};
    use tablog_term::Functor;

    fn sample_tree() -> SpanTree {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", None);
        em.enter(&rec, "dispatch", Some(Functor::new("p", 2)));
        em.exit(&rec);
        em.enter(&rec, "dispatch", Some(Functor::new("q", 1)));
        em.exit(&rec);
        em.exit(&rec);
        rec.snapshot()
    }

    fn samples() -> Vec<CounterSample> {
        vec![
            CounterSample {
                t_ns: 0,
                worklist: 2,
                expands: 2,
                returns: 0,
                tables: 1,
                answers: 0,
                table_bytes: 64,
                msgs_sent: 0,
                worker: None,
            },
            CounterSample {
                t_ns: 1000,
                worklist: 0,
                expands: 0,
                returns: 0,
                tables: 2,
                answers: 3,
                table_bytes: 160,
                msgs_sent: 0,
                worker: None,
            },
        ]
    }

    fn events(doc: &JsonValue) -> Vec<JsonValue> {
        doc.get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn export_is_valid_json_with_balanced_begin_end_pairs() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("chrome trace parses");
        let evs = events(&v);
        let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap().to_owned();
        let begins = evs.iter().filter(|e| ph(e) == "B").count();
        let ends = evs.iter().filter(|e| ph(e) == "E").count();
        assert_eq!(begins, 3);
        assert_eq!(begins, ends);
        // DFS emission: a depth counter driven by B/E never goes negative
        // and returns to zero — properly nested duration events.
        let mut depth = 0i64;
        for e in &evs {
            match ph(e).as_str() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn counter_tracks_cover_all_four_names() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("parses");
        let evs = events(&v);
        let counter_names: Vec<String> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .map(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_owned()
            })
            .collect();
        for want in CHROME_COUNTER_TRACKS {
            assert!(counter_names.iter().any(|n| n == want), "missing {want}");
        }
        // 2 samples x 4 tracks (untagged samples get no msgs_sent track).
        assert_eq!(counter_names.len(), 8);
        let worklist = evs
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("worklist"))
            .unwrap();
        let args = worklist.get("args").unwrap();
        assert_eq!(args.get("expands").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(args.get("returns").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn timestamps_are_normalized_to_the_earliest_observation() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("parses");
        let ts: Vec<f64> = events(&v)
            .iter()
            .filter_map(|e| e.get("ts").and_then(JsonValue::as_f64))
            .collect();
        assert!(!ts.is_empty());
        let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min, 0.0, "earliest event must land at ts 0");
    }

    #[test]
    fn empty_inputs_still_produce_a_loadable_document() {
        let doc = chrome_trace(&SpanTree::default(), &[]);
        let v = parse(&doc).expect("parses");
        // Only the two metadata events.
        assert_eq!(events(&v).len(), 2);
    }

    #[test]
    fn span_args_carry_the_attributed_predicate() {
        let doc = chrome_trace(&sample_tree(), &[]);
        let v = parse(&doc).expect("parses");
        let pred_of = |name: &str| {
            events(&v)
                .iter()
                .find(|e| {
                    e.get("ph").and_then(JsonValue::as_str) == Some("B")
                        && e.get("name").and_then(JsonValue::as_str) == Some(name)
                })
                .and_then(|e| e.get("args"))
                .and_then(|a| a.get("pred"))
                .and_then(|p| p.as_str().map(str::to_owned))
        };
        assert_eq!(pred_of("dispatch"), Some("p/2".to_owned()));
        assert_eq!(pred_of("evaluate"), None);
    }

    fn worker_tree() -> SpanTree {
        let rec = SpanRecorder::new();
        let mut w0 = SpanEmitter::new();
        w0.set_worker(0);
        w0.enter(&rec, "worker_0", None);
        w0.exit(&rec);
        let mut w1 = SpanEmitter::new();
        w1.set_worker(1);
        w1.enter(&rec, "worker_1", None);
        w1.exit(&rec);
        rec.snapshot()
    }

    #[test]
    fn worker_spans_land_on_named_per_worker_lanes() {
        let doc = chrome_trace(&worker_tree(), &[]);
        let v = parse(&doc).expect("parses");
        let evs = events(&v);
        // One thread_name metadata event per lane: slg-engine + 2 workers.
        let lanes: Vec<(f64, String)> = evs
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
            .map(|e| {
                (
                    e.get("tid").and_then(JsonValue::as_f64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str())
                        .unwrap()
                        .to_owned(),
                )
            })
            .collect();
        assert_eq!(
            lanes,
            vec![
                (1.0, "slg-engine".to_owned()),
                (2.0, "worker_0".to_owned()),
                (3.0, "worker_1".to_owned()),
            ]
        );
        // Each worker's span sits on its own lane.
        let tid_of = |name: &str| {
            evs.iter()
                .find(|e| {
                    e.get("ph").and_then(JsonValue::as_str) == Some("B")
                        && e.get("name").and_then(JsonValue::as_str) == Some(name)
                })
                .and_then(|e| e.get("tid"))
                .and_then(JsonValue::as_f64)
        };
        assert_eq!(tid_of("worker_0"), Some(2.0));
        assert_eq!(tid_of("worker_1"), Some(3.0));
    }

    #[test]
    fn worker_tagged_samples_get_prefixed_tracks_with_msgs_sent() {
        let tagged = CounterSample {
            worker: Some(1),
            msgs_sent: 5,
            ..samples()[0]
        };
        let doc = chrome_trace(&SpanTree::default(), &[tagged]);
        let v = parse(&doc).expect("parses");
        let evs = events(&v);
        let names: Vec<String> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .map(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "worker1.worklist",
                "worker1.tables",
                "worker1.answers",
                "worker1.table_bytes",
                "worker1.msgs_sent",
            ]
        );
        // A counter-only worker still gets a named lane.
        assert!(doc.contains("\"name\":\"worker_1\""), "{doc}");
    }

    #[test]
    fn flow_events_pair_sender_and_receiver_lanes() {
        let flow = FlowEvent {
            id: 42,
            kind: MsgKind::Call,
            from: 0,
            to: 1,
            send_ns: 100,
            recv_ns: 400,
            bytes: 24,
        };
        let doc = chrome_trace_with_flows(&worker_tree(), &[], &[flow]);
        let v = parse(&doc).expect("parses");
        let evs = events(&v);
        let find = |ph: &str| {
            evs.iter()
                .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
                .cloned()
                .unwrap_or_else(|| panic!("no ph:{ph} event in {doc}"))
        };
        let s = find("s");
        let f = find("f");
        assert_eq!(s.get("name").and_then(JsonValue::as_str), Some("msg_call"));
        assert_eq!(s.get("id").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(f.get("id").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(s.get("tid").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(f.get("tid").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(f.get("bp").and_then(JsonValue::as_str), Some("e"));
        assert_eq!(
            f.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(JsonValue::as_f64),
            Some(24.0)
        );
        // Flow timestamps are normalized on the shared timeline.
        assert!(s.get("ts").and_then(JsonValue::as_f64).unwrap() >= 0.0);
    }
}
