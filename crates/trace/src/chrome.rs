//! Chrome Trace Event export: spans as `ph:"B"/"E"` duration events and
//! counter samples as `ph:"C"` counter tracks, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The exporter consumes the same frozen structures the other exports do —
//! a [`SpanTree`] and the [`CounterSample`]s of a [`crate::CounterTrack`]
//! — so it composes with any recording setup. Timestamps are normalized to
//! the earliest observation (the first event lands at `ts: 0.000`), which
//! makes the output *deterministic modulo timestamps*: two runs of the same
//! program differ only in `ts` values, never in event order, names,
//! nesting, or counter values. The golden test in `tests/timeline_golden.rs`
//! pins exactly that structural projection.
//!
//! Format notes (the Trace Event Format is JSON-array based):
//!
//! * duration events carry `ph:"B"` (begin) / `ph:"E"` (end) and nest by
//!   emission order within one `pid`/`tid` pair — the tree is walked
//!   depth-first, so every `B` is closed by its own `E` after its children;
//! * counter events carry `ph:"C"`; multiple keys in `args` render as a
//!   stacked series (the `worklist` track stacks `expands` over `returns`);
//! * `ts` is in fractional microseconds;
//! * `ph:"M"` metadata events name the process and thread.

use crate::counter::CounterSample;
use crate::json::escape;
use crate::span::SpanTree;
use std::fmt::Write as _;

/// The `pid` stamped on every event: one logical process per export.
const PID: u32 = 1;
/// The `tid` carrying the span stream (counters are per-process).
const TID: u32 = 1;

/// The counter track names the export emits, in emission order. The
/// `worklist` track carries two stacked series (`expands`, `returns`);
/// the rest carry a single `value` series.
pub const CHROME_COUNTER_TRACKS: [&str; 4] = ["worklist", "tables", "answers", "table_bytes"];

fn push_duration_events(tree: &SpanTree, t0: u64, out: &mut Vec<String>) {
    let ts = |t_ns: u64| (t_ns.saturating_sub(t0)) as f64 / 1000.0;
    enum Step {
        Enter(usize),
        Exit(usize),
    }
    let mut stack: Vec<Step> = tree.roots.iter().rev().map(|&r| Step::Enter(r)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(i) => {
                let n = &tree.nodes[i];
                let mut e = format!(
                    "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"B\",\"ts\":{:.3},\
                     \"pid\":{PID},\"tid\":{TID}",
                    escape(&n.name),
                    ts(n.start_ns)
                );
                if let Some(p) = &n.pred {
                    let _ = write!(e, ",\"args\":{{\"pred\":\"{}\"}}", escape(p));
                }
                e.push('}');
                out.push(e);
                stack.push(Step::Exit(i));
                for &c in n.children.iter().rev() {
                    stack.push(Step::Enter(c));
                }
            }
            Step::Exit(i) => {
                let n = &tree.nodes[i];
                out.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"E\",\"ts\":{:.3},\
                     \"pid\":{PID},\"tid\":{TID}}}",
                    escape(&n.name),
                    ts(n.start_ns + n.total_ns)
                ));
            }
        }
    }
}

fn push_counter_events(counters: &[CounterSample], t0: u64, out: &mut Vec<String>) {
    for c in counters {
        let ts = (c.t_ns.saturating_sub(t0)) as f64 / 1000.0;
        out.push(format!(
            "{{\"name\":\"worklist\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{PID},\
             \"args\":{{\"expands\":{},\"returns\":{}}}}}",
            c.expands, c.returns
        ));
        for (name, value) in [
            ("tables", c.tables),
            ("answers", c.answers),
            ("table_bytes", c.table_bytes),
        ] {
            out.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{PID},\
                 \"args\":{{\"value\":{value}}}}}"
            ));
        }
    }
}

/// Renders a span tree plus counter samples as one Chrome-trace JSON
/// document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Event order is deterministic: two metadata events, then the span forest
/// depth-first (each span's `B`, its children, its `E`), then the counter
/// events in sample order with the track order of
/// [`CHROME_COUNTER_TRACKS`]. Trace viewers sort by `ts`, so grouping by
/// kind is purely for structural stability of the file.
pub fn chrome_trace(tree: &SpanTree, counters: &[CounterSample]) -> String {
    let t0 = tree
        .nodes
        .iter()
        .map(|n| n.start_ns)
        .chain(counters.iter().map(|c| c.t_ns))
        .min()
        .unwrap_or(0);
    let mut events = vec![
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\
             \"args\":{{\"name\":\"tablog\"}}}}"
        ),
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID},\
             \"args\":{{\"name\":\"slg-engine\"}}}}"
        ),
    ];
    push_duration_events(tree, t0, &mut events);
    push_counter_events(counters, t0, &mut events);
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::span::{SpanEmitter, SpanRecorder};
    use tablog_term::Functor;

    fn sample_tree() -> SpanTree {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", None);
        em.enter(&rec, "dispatch", Some(Functor::new("p", 2)));
        em.exit(&rec);
        em.enter(&rec, "dispatch", Some(Functor::new("q", 1)));
        em.exit(&rec);
        em.exit(&rec);
        rec.snapshot()
    }

    fn samples() -> Vec<CounterSample> {
        vec![
            CounterSample {
                t_ns: 0,
                worklist: 2,
                expands: 2,
                returns: 0,
                tables: 1,
                answers: 0,
                table_bytes: 64,
            },
            CounterSample {
                t_ns: 1000,
                worklist: 0,
                expands: 0,
                returns: 0,
                tables: 2,
                answers: 3,
                table_bytes: 160,
            },
        ]
    }

    fn events(doc: &JsonValue) -> Vec<JsonValue> {
        doc.get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn export_is_valid_json_with_balanced_begin_end_pairs() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("chrome trace parses");
        let evs = events(&v);
        let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap().to_owned();
        let begins = evs.iter().filter(|e| ph(e) == "B").count();
        let ends = evs.iter().filter(|e| ph(e) == "E").count();
        assert_eq!(begins, 3);
        assert_eq!(begins, ends);
        // DFS emission: a depth counter driven by B/E never goes negative
        // and returns to zero — properly nested duration events.
        let mut depth = 0i64;
        for e in &evs {
            match ph(e).as_str() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn counter_tracks_cover_all_four_names() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("parses");
        let evs = events(&v);
        let counter_names: Vec<String> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .map(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_owned()
            })
            .collect();
        for want in CHROME_COUNTER_TRACKS {
            assert!(counter_names.iter().any(|n| n == want), "missing {want}");
        }
        // 2 samples x 4 tracks.
        assert_eq!(counter_names.len(), 8);
        let worklist = evs
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("worklist"))
            .unwrap();
        let args = worklist.get("args").unwrap();
        assert_eq!(args.get("expands").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(args.get("returns").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn timestamps_are_normalized_to_the_earliest_observation() {
        let doc = chrome_trace(&sample_tree(), &samples());
        let v = parse(&doc).expect("parses");
        let ts: Vec<f64> = events(&v)
            .iter()
            .filter_map(|e| e.get("ts").and_then(JsonValue::as_f64))
            .collect();
        assert!(!ts.is_empty());
        let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min, 0.0, "earliest event must land at ts 0");
    }

    #[test]
    fn empty_inputs_still_produce_a_loadable_document() {
        let doc = chrome_trace(&SpanTree::default(), &[]);
        let v = parse(&doc).expect("parses");
        // Only the two metadata events.
        assert_eq!(events(&v).len(), 2);
    }

    #[test]
    fn span_args_carry_the_attributed_predicate() {
        let doc = chrome_trace(&sample_tree(), &[]);
        let v = parse(&doc).expect("parses");
        let pred_of = |name: &str| {
            events(&v)
                .iter()
                .find(|e| {
                    e.get("ph").and_then(JsonValue::as_str) == Some("B")
                        && e.get("name").and_then(JsonValue::as_str) == Some(name)
                })
                .and_then(|e| e.get("args"))
                .and_then(|a| a.get("pred"))
                .and_then(|p| p.as_str().map(str::to_owned))
        };
        assert_eq!(pred_of("dispatch"), Some("p/2".to_owned()));
        assert_eq!(pred_of("evaluate"), None);
    }
}
