//! Trace sinks: consumers of [`TraceEvent`]s.
//!
//! Sinks take `&self` and use interior mutability, because the engine holds
//! a single shared `&dyn TraceSink` for the whole evaluation. Sinks are
//! `Send + Sync` so engines (which are `Send`) can carry them across
//! threads and the parallel multi-program driver can share one sink.

use crate::counter::CounterSample;
use crate::event::{OwnedEvent, TraceEvent};
use crate::health::HealthSnapshot;
use crate::span::{SpanEvent, SpanId};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A consumer of engine trace events.
pub trait TraceSink: Send + Sync {
    /// Observes one event. Borrowed: retain via [`TraceEvent::to_owned`].
    fn event(&self, e: &TraceEvent<'_>);

    /// Observes the opening edge of a timed span (see [`crate::span`]).
    /// Default: ignore — sinks that predate spans are unaffected.
    fn span_enter(&self, _s: &SpanEvent<'_>) {}

    /// Observes the closing edge of the span opened with `id`.
    fn span_exit(&self, _id: SpanId, _t_ns: u64) {}

    /// Observes one counter time-series sample (see [`crate::counter`]).
    /// Default: ignore — sinks that predate counters are unaffected.
    fn counter_sample(&self, _s: &CounterSample) {}

    /// Observes one periodic run-health snapshot (see [`crate::health`]).
    /// Default: ignore — sinks that predate health reporting are
    /// unaffected.
    fn health(&self, _s: &HealthSnapshot) {}

    /// Flushes any buffered output (e.g. a JSON-lines writer).
    fn flush(&self) {}
}

/// Discards every event. Useful as an explicit "tracing requested but
/// nothing to record" placeholder; `None` is still cheaper.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&self, _e: &TraceEvent<'_>) {}
}

/// Counts events by kind.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl CountingSink {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occurrences of one event kind (snake_case name).
    pub fn count(&self, kind: &str) -> u64 {
        lock(&self.counts).get(kind).copied().unwrap_or(0)
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        lock(&self.counts).values().sum()
    }

    /// All (kind, count) pairs, sorted by kind.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        lock(&self.counts).iter().map(|(k, v)| (*k, *v)).collect()
    }
}

impl TraceSink for CountingSink {
    fn event(&self, e: &TraceEvent<'_>) {
        *lock(&self.counts).entry(e.kind()).or_insert(0) += 1;
    }
}

/// Writes each event as one JSON object per line.
///
/// The writer is flushed on [`TraceSink::flush`], on
/// [`JsonLinesSink::into_inner`], **and on drop** — so a run that errors
/// out (step limit, unknown predicate) or simply drops its engine still
/// leaves every complete line on disk behind a `BufWriter`.
pub struct JsonLinesSink<W: Write + Send> {
    // `Option` so `into_inner` can move the writer out from under the
    // `Drop` impl; `None` only after `into_inner`.
    out: Mutex<Option<W>>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(Some(out)),
        }
    }

    /// Unwraps the writer, flushing first.
    pub fn into_inner(self) -> W {
        let mut w = lock(&self.out).take().expect("writer taken once");
        let _ = w.flush();
        w
    }

    fn write_line(&self, line: &str) {
        if let Some(out) = lock(&self.out).as_mut() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn event(&self, e: &TraceEvent<'_>) {
        self.write_line(&e.to_json());
    }

    fn span_enter(&self, s: &SpanEvent<'_>) {
        let mut line = format!("{{\"span\":\"enter\",\"id\":{}", s.id.0);
        match s.parent {
            Some(p) => line.push_str(&format!(",\"parent\":{}", p.0)),
            None => line.push_str(",\"parent\":null"),
        }
        line.push_str(&format!(",\"name\":\"{}\"", crate::json::escape(s.name)));
        match s.pred {
            Some(f) => line.push_str(&format!(
                ",\"pred\":\"{}\"",
                crate::json::escape(&f.to_string())
            )),
            None => line.push_str(",\"pred\":null"),
        }
        line.push_str(&format!(",\"t_ns\":{}}}", s.t_ns));
        self.write_line(&line);
    }

    fn span_exit(&self, id: SpanId, t_ns: u64) {
        self.write_line(&format!(
            "{{\"span\":\"exit\",\"id\":{},\"t_ns\":{t_ns}}}",
            id.0
        ));
    }

    fn counter_sample(&self, s: &CounterSample) {
        self.write_line(&format!("{{\"counter\":{}}}", s.to_json()));
    }

    fn health(&self, s: &HealthSnapshot) {
        self.write_line(&format!("{{\"health\":{}}}", s.to_json()));
    }

    fn flush(&self) {
        if let Some(out) = lock(&self.out).as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        TraceSink::flush(self);
    }
}

/// A cloneable in-memory byte buffer implementing [`Write`], for capturing
/// [`JsonLinesSink`] output while the sink itself is owned by the engine.
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&lock(&self.0)).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Retains the last `capacity` events, oldest evicted first.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<OwnedEvent>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (capacity 0 holds none).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<OwnedEvent> {
        lock(&self.buf).iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        lock(&self.buf).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.buf).is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn event(&self, e: &TraceEvent<'_>) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = lock(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(e.to_owned());
    }
}

/// Fans every event out to several sinks in order.
#[derive(Clone, Default)]
pub struct MultiSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink, returning `self` for chaining.
    pub fn with(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Arc<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for MultiSink {
    fn event(&self, e: &TraceEvent<'_>) {
        for s in &self.sinks {
            s.event(e);
        }
    }

    fn span_enter(&self, s: &SpanEvent<'_>) {
        for sink in &self.sinks {
            sink.span_enter(s);
        }
    }

    fn span_exit(&self, id: SpanId, t_ns: u64) {
        for sink in &self.sinks {
            sink.span_exit(id, t_ns);
        }
    }

    fn counter_sample(&self, c: &CounterSample) {
        for s in &self.sinks {
            s.counter_sample(c);
        }
    }

    fn health(&self, h: &HealthSnapshot) {
        for s in &self.sinks {
            s.health(h);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_term::{atom, structure, var, Functor, Term, Var};

    fn sample<'a>(k: &'a [Term]) -> [TraceEvent<'a>; 3] {
        let p = Functor::new("p", 2);
        [
            TraceEvent::NewSubgoal {
                pred: p,
                call: k,
                bytes: 48,
            },
            TraceEvent::ClauseResolution { pred: p },
            TraceEvent::AnswerInsert {
                pred: p,
                answer: k,
                bytes: 40,
            },
        ]
    }

    fn key() -> Vec<Term> {
        vec![structure("p", vec![var(Var(0)), atom("a")])]
    }

    #[test]
    fn counting_sink_tallies_by_kind() {
        let k = key();
        let sink = CountingSink::new();
        for e in sample(&k) {
            sink.event(&e);
        }
        sink.event(&TraceEvent::ClauseResolution {
            pred: Functor::new("p", 2),
        });
        assert_eq!(sink.count("clause_resolution"), 2);
        assert_eq!(sink.count("new_subgoal"), 1);
        assert_eq!(sink.count("subgoal_complete"), 0);
        assert_eq!(sink.total(), 4);
    }

    #[test]
    fn json_lines_sink_emits_one_valid_object_per_line() {
        let k = key();
        let buf = SharedBuf::new();
        let sink = JsonLinesSink::new(buf.clone());
        for e in sample(&k) {
            sink.event(&e);
        }
        sink.flush();
        let text = buf.contents();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            crate::json::parse(line).expect("each line is valid JSON");
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let k = key();
        let sink = RingBufferSink::new(2);
        for e in sample(&k) {
            sink.event(&e);
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "clause_resolution");
        assert_eq!(events[1].kind(), "answer_insert");
    }

    #[test]
    fn multi_sink_fans_out() {
        let k = key();
        let a = Arc::new(CountingSink::new());
        let b = Arc::new(RingBufferSink::new(10));
        let multi = MultiSink::new().with(a.clone()).with(b.clone());
        for e in sample(&k) {
            multi.event(&e);
        }
        assert_eq!(a.total(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = Arc::new(CountingSink::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    sink.event(&TraceEvent::ClauseResolution {
                        pred: Functor::new("p", 2),
                    });
                });
            }
        });
        assert_eq!(sink.count("clause_resolution"), 4);
    }
}
