//! Hierarchical spans: timed enter/exit intervals emitted by the engine
//! around goal dispatch, clause resolution, answer return, and completion,
//! and by the analyzers around their pipeline phases.
//!
//! Spans ride on the same [`TraceSink`] channel as [`crate::TraceEvent`]s
//! but through two dedicated default-no-op methods
//! ([`TraceSink::span_enter`] / [`TraceSink::span_exit`]), so sinks that do
//! not care — and the golden JSONL event stream — are unaffected. The
//! engine only constructs span events when
//! `EngineOptions::record_spans` is set *and* a sink is installed, so the
//! disabled path costs exactly zero.
//!
//! The emitting side supplies everything: a process-unique [`SpanId`], the
//! parent id (emitters track their own stack in a [`SpanEmitter`]), and a
//! monotonic timestamp in nanoseconds from a process-wide epoch
//! ([`now_ns`]), so spans emitted by different components (analyzer phases
//! in `tablog-core`, engine internals) share one timeline and nest by
//! explicit parent links. [`SpanRecorder`] collects raw spans;
//! [`SpanRecorder::snapshot`] freezes them into a [`SpanTree`] with
//! self/total time per node and rollups by span name, by predicate, and by
//! any caller-supplied grouping (e.g. the SCCs of the analyzed program).

use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;
use tablog_term::Functor;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifier of one span, unique within the process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

/// Mints a fresh process-unique span id.
pub fn next_span_id() -> SpanId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Monotonic nanoseconds since a lazily initialized process-wide epoch.
/// Every span timestamp comes from this clock, so spans from different
/// emitters (analyzer phases, engine machines) are directly comparable.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A span-enter notification: the opening edge of one timed interval.
/// The matching [`TraceSink::span_exit`] carries the same [`SpanId`].
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent<'a> {
    /// Process-unique identifier, echoed by the matching exit.
    pub id: SpanId,
    /// Enclosing span, if any — explicit, so emitters on different call
    /// stacks (analyzer vs. engine) can stitch one tree.
    pub parent: Option<SpanId>,
    /// Span name: `"evaluate"`, `"dispatch"`, `"clause_resolution"`,
    /// `"answer_return"`, `"completion"`, or an analyzer phase name.
    pub name: &'a str,
    /// The predicate the span is attributed to, when there is one.
    pub pred: Option<Functor>,
    /// Monotonic timestamp from [`now_ns`].
    pub t_ns: u64,
    /// Parallel worker the span belongs to, if the emitter runs inside a
    /// parallel evaluation (`None` for sequential / analyzer spans).
    pub worker: Option<usize>,
}

/// Tracks the current span stack for one emitting component and sends
/// paired enter/exit notifications to a sink.
///
/// An emitter constructed with [`SpanEmitter::with_root`] parents its
/// outermost spans under an externally supplied span — this is how engine
/// spans nest under the analyzer's `"analysis"` phase.
#[derive(Debug, Default)]
pub struct SpanEmitter {
    root_parent: Option<SpanId>,
    stack: Vec<SpanId>,
    worker: Option<usize>,
}

impl SpanEmitter {
    /// An emitter whose outermost spans have no parent.
    pub fn new() -> Self {
        Self::default()
    }

    /// An emitter whose outermost spans are parented under `parent`.
    pub fn with_root(parent: Option<SpanId>) -> Self {
        SpanEmitter {
            root_parent: parent,
            stack: Vec::new(),
            worker: None,
        }
    }

    /// Tags every span this emitter opens from now on with a parallel
    /// worker id. Worker machines call this once, right after they are
    /// handed their [`crate::sink::TraceSink`].
    pub fn set_worker(&mut self, worker: usize) {
        self.worker = Some(worker);
    }

    /// The span new children would be parented under.
    pub fn current(&self) -> Option<SpanId> {
        self.stack.last().copied().or(self.root_parent)
    }

    /// Current nesting depth of this emitter (excluding the external root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Opens a span and pushes it on the stack.
    pub fn enter(&mut self, sink: &dyn TraceSink, name: &str, pred: Option<Functor>) -> SpanId {
        let id = next_span_id();
        sink.span_enter(&SpanEvent {
            id,
            parent: self.current(),
            name,
            pred,
            t_ns: now_ns(),
            worker: self.worker,
        });
        self.stack.push(id);
        id
    }

    /// Closes the innermost open span. A no-op on an empty stack.
    pub fn exit(&mut self, sink: &dyn TraceSink) {
        if let Some(id) = self.stack.pop() {
            sink.span_exit(id, now_ns());
        }
    }
}

#[derive(Clone, Debug)]
struct RawSpan {
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    pred: Option<Functor>,
    start_ns: u64,
    end_ns: Option<u64>,
    worker: Option<usize>,
}

/// A [`TraceSink`] that retains every span (and ignores ordinary events),
/// for freezing into a [`SpanTree`].
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Mutex<Vec<RawSpan>>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        lock(&self.spans).len()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.spans).is_empty()
    }

    /// Freezes the recorded spans into a tree with self/total times.
    /// Spans still open (e.g. an evaluation aborted by a step limit) are
    /// clamped to the latest timestamp observed.
    pub fn snapshot(&self) -> SpanTree {
        SpanTree::build(&lock(&self.spans))
    }
}

impl TraceSink for SpanRecorder {
    fn event(&self, _e: &crate::event::TraceEvent<'_>) {}

    fn span_enter(&self, s: &SpanEvent<'_>) {
        lock(&self.spans).push(RawSpan {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            pred: s.pred,
            start_ns: s.t_ns,
            end_ns: None,
            worker: s.worker,
        });
    }

    fn span_exit(&self, id: SpanId, t_ns: u64) {
        let mut spans = lock(&self.spans);
        // Exits arrive LIFO, so the span being closed is almost always at
        // (or very near) the back.
        if let Some(s) = spans.iter_mut().rev().find(|s| s.id == id) {
            s.end_ns = Some(t_ns);
        }
    }
}

/// One node of a [`SpanTree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's id.
    pub id: SpanId,
    /// Index of the parent node in [`SpanTree::nodes`], if the parent was
    /// itself recorded.
    pub parent: Option<usize>,
    /// Span name.
    pub name: String,
    /// Attributed predicate as `"name/arity"`, when there is one.
    pub pred: Option<String>,
    /// Start timestamp (nanoseconds on the [`now_ns`] timeline).
    pub start_ns: u64,
    /// Wall-clock duration of the whole span.
    pub total_ns: u64,
    /// `total_ns` minus the total time of direct children: time spent in
    /// this span itself.
    pub self_ns: u64,
    /// Child node indices, in emission (chronological) order.
    pub children: Vec<usize>,
    /// Parallel worker the span was emitted by, if any.
    pub worker: Option<usize>,
}

/// Aggregated time for one rollup bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanRollup {
    /// Number of spans in the bucket.
    pub count: u64,
    /// Sum of span totals. Nested same-bucket spans both count, so this can
    /// exceed wall-clock; `self_ns` never does.
    pub total_ns: u64,
    /// Sum of span self-times; buckets partition wall-clock time.
    pub self_ns: u64,
}

/// A frozen span forest: nodes with parent/child links and self/total
/// times, plus rollup queries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanTree {
    /// All recorded spans, in emission order (parents precede children).
    pub nodes: Vec<SpanNode>,
    /// Indices of nodes whose parent was not itself recorded.
    pub roots: Vec<usize>,
}

impl SpanTree {
    fn build(raw: &[RawSpan]) -> SpanTree {
        let horizon = raw
            .iter()
            .map(|s| s.end_ns.unwrap_or(s.start_ns))
            .max()
            .unwrap_or(0);
        let index: BTreeMap<SpanId, usize> =
            raw.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut nodes: Vec<SpanNode> = raw
            .iter()
            .map(|s| {
                let end = s.end_ns.unwrap_or(horizon).max(s.start_ns);
                SpanNode {
                    id: s.id,
                    parent: s.parent.and_then(|p| index.get(&p).copied()),
                    name: s.name.clone(),
                    pred: s.pred.map(|f| f.to_string()),
                    start_ns: s.start_ns,
                    total_ns: end - s.start_ns,
                    self_ns: end - s.start_ns,
                    children: Vec::new(),
                    worker: s.worker,
                }
            })
            .collect();
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            match nodes[i].parent {
                // Emission order guarantees a parent's index precedes its
                // children's, so this single pass links every edge.
                Some(p) => {
                    nodes[p].children.push(i);
                    nodes[p].self_ns = nodes[p].self_ns.saturating_sub(nodes[i].total_ns);
                }
                None => roots.push(i),
            }
        }
        SpanTree { nodes, roots }
    }

    /// Whether the tree has no spans.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregates by span name, sorted by name.
    pub fn rollup_by_name(&self) -> Vec<(String, SpanRollup)> {
        let mut agg: BTreeMap<&str, SpanRollup> = BTreeMap::new();
        for n in &self.nodes {
            let r = agg.entry(&n.name).or_default();
            r.count += 1;
            r.total_ns += n.total_ns;
            r.self_ns += n.self_ns;
        }
        agg.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Aggregates spans carrying a predicate by `"name/arity"`, sorted by
    /// predicate. `total_ns` here sums each predicate's span totals
    /// (dispatch including nested clause resolution), `self_ns` only the
    /// time not attributed to an inner span.
    pub fn rollup_by_pred(&self) -> Vec<(String, SpanRollup)> {
        let mut agg: BTreeMap<&str, SpanRollup> = BTreeMap::new();
        for n in &self.nodes {
            if let Some(p) = &n.pred {
                let r = agg.entry(p.as_str()).or_default();
                r.count += 1;
                r.total_ns += n.total_ns;
                r.self_ns += n.self_ns;
            }
        }
        agg.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Aggregates predicate-carrying spans under caller-defined groups —
    /// pass the SCC of each predicate to get per-SCC time. Predicates for
    /// which `group_of` returns `None` are dropped. Sorted by group label.
    pub fn rollup_by_group(
        &self,
        group_of: &dyn Fn(&str) -> Option<String>,
    ) -> Vec<(String, SpanRollup)> {
        let mut agg: BTreeMap<String, SpanRollup> = BTreeMap::new();
        for n in &self.nodes {
            if let Some(label) = n.pred.as_deref().and_then(group_of) {
                let r = agg.entry(label).or_default();
                r.count += 1;
                r.total_ns += n.total_ns;
                r.self_ns += n.self_ns;
            }
        }
        agg.into_iter().collect()
    }

    /// Renders the name and predicate rollups as fixed-width text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            return out;
        }
        let _ = writeln!(out, "spans: {} recorded", self.len());
        let section = |out: &mut String, title: &str, rows: &[(String, SpanRollup)]| {
            let name_w = rows
                .iter()
                .map(|(k, _)| k.len())
                .chain([title.len()])
                .max()
                .unwrap_or(8);
            let _ = writeln!(
                out,
                "{title:<name_w$} {:>8} {:>12} {:>12}",
                "count", "self(ms)", "total(ms)"
            );
            for (k, r) in rows {
                let _ = writeln!(
                    out,
                    "{k:<name_w$} {:>8} {:>12.3} {:>12.3}",
                    r.count,
                    r.self_ns as f64 / 1e6,
                    r.total_ns as f64 / 1e6
                );
            }
        };
        section(&mut out, "span", &self.rollup_by_name());
        let preds = self.rollup_by_pred();
        if !preds.is_empty() {
            section(&mut out, "predicate", &preds);
        }
        out
    }

    /// Renders the rollups as a JSON object:
    /// `{"count":N,"by_name":{...},"by_pred":{...}}` with times in integer
    /// nanoseconds.
    pub fn to_json(&self) -> String {
        let obj = |rows: &[(String, SpanRollup)]| {
            let mut s = String::from("{");
            for (i, (k, r)) in rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\"{}\":{{\"count\":{},\"self_ns\":{},\"total_ns\":{}}}",
                    crate::json::escape(k),
                    r.count,
                    r.self_ns,
                    r.total_ns
                );
            }
            s.push('}');
            s
        };
        format!(
            "{{\"count\":{},\"by_name\":{},\"by_pred\":{}}}",
            self.len(),
            obj(&self.rollup_by_name()),
            obj(&self.rollup_by_pred())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_nests_and_recorder_rebuilds_the_tree() {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        let outer = em.enter(&rec, "evaluate", None);
        let inner = em.enter(&rec, "dispatch", Some(Functor::new("p", 2)));
        assert_eq!(em.current(), Some(inner));
        em.exit(&rec);
        em.exit(&rec);
        assert_ne!(outer, inner);
        let tree = rec.snapshot();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.roots, vec![0]);
        assert_eq!(tree.nodes[0].children, vec![1]);
        assert_eq!(tree.nodes[1].parent, Some(0));
        assert_eq!(tree.nodes[1].pred.as_deref(), Some("p/2"));
        assert!(tree.nodes[0].total_ns >= tree.nodes[1].total_ns);
        assert_eq!(
            tree.nodes[0].self_ns,
            tree.nodes[0].total_ns - tree.nodes[1].total_ns
        );
    }

    #[test]
    fn external_root_parents_cross_component_spans() {
        let rec = SpanRecorder::new();
        let mut phases = SpanEmitter::new();
        let analysis = phases.enter(&rec, "analysis", None);
        let mut engine = SpanEmitter::with_root(Some(analysis));
        engine.enter(&rec, "evaluate", None);
        engine.exit(&rec);
        phases.exit(&rec);
        let tree = rec.snapshot();
        assert_eq!(tree.roots, vec![0]);
        assert_eq!(tree.nodes[1].name, "evaluate");
        assert_eq!(tree.nodes[1].parent, Some(0));
    }

    #[test]
    fn open_spans_are_clamped_not_lost() {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", None);
        em.enter(&rec, "dispatch", None);
        em.exit(&rec); // "evaluate" never exits (aborted run)
        let tree = rec.snapshot();
        assert_eq!(tree.len(), 2);
        assert!(tree.nodes[0].total_ns >= tree.nodes[1].total_ns);
    }

    #[test]
    fn rollups_partition_self_time() {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", None);
        for i in 0..3 {
            em.enter(&rec, "dispatch", Some(Functor::new("p", i)));
            em.exit(&rec);
        }
        em.exit(&rec);
        let tree = rec.snapshot();
        let by_name = tree.rollup_by_name();
        let total_self: u64 = by_name.iter().map(|(_, r)| r.self_ns).sum();
        let evaluate = by_name.iter().find(|(k, _)| k == "evaluate").unwrap().1;
        assert_eq!(evaluate.count, 1);
        assert_eq!(total_self, evaluate.total_ns);
        assert_eq!(tree.rollup_by_pred().len(), 3);
        let grouped = tree.rollup_by_group(&|_| Some("one-scc".to_string()));
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].1.count, 3);
    }

    #[test]
    fn worker_tag_flows_from_emitter_to_tree() {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", None);
        em.exit(&rec);
        let mut tagged = SpanEmitter::new();
        tagged.set_worker(3);
        tagged.enter(&rec, "worker_3", None);
        tagged.exit(&rec);
        let tree = rec.snapshot();
        assert_eq!(tree.nodes[0].worker, None);
        assert_eq!(tree.nodes[1].worker, Some(3));
    }

    #[test]
    fn json_rollup_parses() {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "evaluate", Some(Functor::new("q", 1)));
        em.exit(&rec);
        let v = crate::json::parse(&rec.snapshot().to_json()).expect("valid JSON");
        assert_eq!(v.get("count").and_then(|c| c.as_f64()), Some(1.0));
        assert!(v.get("by_name").and_then(|b| b.get("evaluate")).is_some());
    }
}
