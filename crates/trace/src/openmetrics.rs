//! OpenMetrics text exposition of [`HealthSnapshot`]s.
//!
//! The north-star `tablog serve` daemon wants its vital signs scraped by
//! off-the-shelf collectors (Prometheus and friends speak the OpenMetrics
//! text format). This module renders a snapshot — or a whole snapshot
//! series with timestamps — as `# TYPE`-declared gauge and counter
//! families, and ships a small validator so tests (and CI) can hold the
//! exporter to the format instead of to a golden string.
//!
//! Shape of the output, per the OpenMetrics spec:
//!
//! ```text
//! # TYPE tablog_steps counter
//! # HELP tablog_steps Worklist tasks executed.
//! tablog_steps_total 8231
//! # TYPE tablog_table_bytes gauge
//! tablog_table_bytes 145984
//! # EOF
//! ```
//!
//! Counter sample names carry the mandatory `_total` suffix; timestamps
//! (series export only) are seconds on the [`crate::span::now_ns`]
//! monotonic timeline; the exposition ends with the mandatory `# EOF`.

use crate::counter::CounterSample;
use crate::health::HealthSnapshot;

/// One metric family: its declared name, OpenMetrics type, help text, and
/// a closure projecting the sample line body out of a snapshot.
struct Family {
    name: &'static str,
    kind: &'static str,
    help: &'static str,
    /// Renders `(labels, value)` pairs for one snapshot; `None` skips the
    /// snapshot (e.g. peak heap when the tracking allocator is absent).
    sample: fn(&HealthSnapshot) -> Vec<(&'static str, f64)>,
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "tablog_steps",
            kind: "counter",
            help: "Worklist tasks executed.",
            sample: |s| vec![("", s.steps as f64)],
        },
        Family {
            name: "tablog_answers",
            kind: "counter",
            help: "Unique answers admitted into tables.",
            sample: |s| vec![("", s.answers as f64)],
        },
        Family {
            name: "tablog_duplicate_answers",
            kind: "counter",
            help: "Duplicate answers rejected by tables.",
            sample: |s| vec![("", s.duplicate_answers as f64)],
        },
        Family {
            name: "tablog_worklist_depth",
            kind: "gauge",
            help: "Pending worklist tasks by task class.",
            sample: |s| {
                vec![
                    ("{class=\"expand\"}", s.expands as f64),
                    ("{class=\"return\"}", s.returns as f64),
                ]
            },
        },
        Family {
            name: "tablog_tables",
            kind: "gauge",
            help: "Call tables created so far.",
            sample: |s| vec![("", s.tables as f64)],
        },
        Family {
            name: "tablog_completed_tables",
            kind: "gauge",
            help: "Call tables marked complete.",
            sample: |s| vec![("", s.completed_tables as f64)],
        },
        Family {
            name: "tablog_table_bytes",
            kind: "gauge",
            help: "Table space in bytes (incremental accounting).",
            sample: |s| vec![("", s.table_bytes as f64)],
        },
        Family {
            name: "tablog_answer_rate",
            kind: "gauge",
            help: "Unique answers per second over the last window.",
            sample: |s| vec![("", s.answer_rate)],
        },
        Family {
            name: "tablog_peak_heap_bytes",
            kind: "gauge",
            help: "Peak process heap (tracking allocator only).",
            sample: |s| match s.peak_heap_bytes {
                Some(b) => vec![("", b as f64)],
                None => vec![],
            },
        },
        Family {
            name: "tablog_stalled",
            kind: "gauge",
            help: "Stall-watchdog verdict (1 = likely divergence).",
            sample: |s| vec![("", if s.stalled { 1.0 } else { 0.0 })],
        },
    ]
}

/// Formats a value the OpenMetrics way: integral values without a
/// fractional part, everything else with enough digits to round-trip.
fn value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render(samples: &[HealthSnapshot], timestamps: bool) -> String {
    let mut out = String::new();
    for f in families() {
        let lines: Vec<String> = samples
            .iter()
            .flat_map(|s| {
                let ts = if timestamps {
                    // OpenMetrics timestamps are seconds (arbitrary
                    // decimal precision), here on the monotonic span
                    // timeline shared by every exporter.
                    format!(" {:.9}", s.t_ns as f64 / 1e9)
                } else {
                    String::new()
                };
                let suffix = if f.kind == "counter" { "_total" } else { "" };
                (f.sample)(s)
                    .into_iter()
                    .map(move |(labels, v)| {
                        format!("{}{}{} {}{}", f.name, suffix, labels, value(v), ts)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
        out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Renders the latest snapshot as an OpenMetrics exposition (no
/// timestamps — scrape semantics: "the state right now").
pub fn openmetrics(latest: &HealthSnapshot) -> String {
    render(std::slice::from_ref(latest), false)
}

/// Renders a snapshot series as an OpenMetrics exposition with one
/// timestamped sample line per snapshot per family — the whole run's
/// health history in a form collectors and humans can both read.
pub fn openmetrics_series(samples: &[HealthSnapshot]) -> String {
    render(samples, true)
}

/// Renders the end-of-run state of each parallel worker as worker-labeled
/// OpenMetrics gauge families: for every worker that appears in the
/// sample stream, the *last* sample's worklist depth, live tables, answer
/// count, table bytes, and cumulative messages sent, each exposed as
/// `tablog_worker_<quantity>{worker="N"}`. Untagged (sequential) samples
/// are ignored — this exposition is specifically the per-worker view the
/// aggregate families cannot give.
pub fn openmetrics_workers(samples: &[CounterSample]) -> String {
    use std::collections::BTreeMap;
    let mut last: BTreeMap<usize, &CounterSample> = BTreeMap::new();
    for s in samples {
        if let Some(w) = s.worker {
            last.insert(w, s);
        }
    }
    let mut out = String::new();
    type Family = (&'static str, &'static str, fn(&CounterSample) -> f64);
    let families: [Family; 5] = [
        (
            "tablog_worker_worklist_depth",
            "Pending worklist tasks on the worker at its last sample.",
            |s| s.worklist as f64,
        ),
        (
            "tablog_worker_tables",
            "Call tables owned by the worker.",
            |s| s.tables as f64,
        ),
        (
            "tablog_worker_answers",
            "Unique answers admitted into the worker's tables.",
            |s| s.answers as f64,
        ),
        (
            "tablog_worker_table_bytes",
            "Table space owned by the worker, in bytes.",
            |s| s.table_bytes as f64,
        ),
        (
            "tablog_worker_msgs_sent",
            "Cumulative cross-worker messages sent by the worker.",
            |s| s.msgs_sent as f64,
        ),
    ];
    for (name, help, project) in families {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("# HELP {name} {help}\n"));
        for (w, s) in &last {
            out.push_str(&format!("{name}{{worker=\"{w}\"}} {}\n", value(project(s))));
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Checks an OpenMetrics text exposition for structural validity: every
/// sample belongs to a `# TYPE`-declared family, counter samples carry
/// the `_total` suffix, values and timestamps parse, and the exposition
/// ends with `# EOF` and nothing after it.
///
/// Not a complete spec implementation — it is the invariant the exporter
/// promises, kept separate so tests and CI validate *format*, not golden
/// strings.
pub fn validate_openmetrics(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<&str, &str> = HashMap::new();
    let mut seen_eof = false;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            return Err(format!("line {n}: blank lines are not allowed"));
        }
        if seen_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                seen_eof = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (name, kind) = match (it.next(), it.next(), it.next()) {
                    (Some(name), Some(kind), None) => (name, kind),
                    _ => return Err(format!("line {n}: malformed # TYPE")),
                };
                if !matches!(kind, "gauge" | "counter" | "info" | "unknown") {
                    return Err(format!("line {n}: unsupported metric type {kind:?}"));
                }
                if types.insert(name, kind).is_some() {
                    return Err(format!("line {n}: duplicate # TYPE for {name}"));
                }
            } else if rest.starts_with("HELP ") || rest.starts_with("UNIT ") {
                // Free-text metadata; nothing to check beyond the prefix.
            } else {
                return Err(format!("line {n}: unknown comment directive"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: comments must start with \"# \""));
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let name = &line[..name_end];
        let rest = &line[name_end..];
        let rest = if let Some(r) = rest.strip_prefix('{') {
            let close = r
                .find('}')
                .ok_or_else(|| format!("line {n}: unclosed label set"))?;
            &r[close + 1..]
        } else {
            rest
        };
        let mut parts = rest.split_whitespace();
        let val = parts
            .next()
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        val.parse::<f64>()
            .map_err(|_| format!("line {n}: unparseable value {val:?}"))?;
        if let Some(ts) = parts.next() {
            ts.parse::<f64>()
                .map_err(|_| format!("line {n}: unparseable timestamp {ts:?}"))?;
        }
        if parts.next().is_some() {
            return Err(format!("line {n}: trailing tokens after timestamp"));
        }
        // Resolve the family: counters expose `name_total`, every other
        // type exposes the family name itself.
        let family_kind = types.get(name).copied().or_else(|| {
            name.strip_suffix("_total")
                .and_then(|f| types.get(f).copied())
                .filter(|k| *k == "counter")
        });
        match family_kind {
            None => {
                return Err(format!(
                    "line {n}: sample {name:?} has no preceding # TYPE declaration"
                ))
            }
            Some("counter") if !name.ends_with("_total") => {
                return Err(format!(
                    "line {n}: counter sample {name:?} must end with _total"
                ))
            }
            _ => {}
        }
    }
    if !seen_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ns: u64, answers: usize, peak: Option<usize>) -> HealthSnapshot {
        HealthSnapshot {
            t_ns,
            steps: 100,
            worklist: 5,
            expands: 3,
            returns: 2,
            tables: 7,
            completed_tables: 4,
            answers,
            duplicate_answers: 2,
            table_bytes: 4096,
            answer_rate: 250.5,
            peak_heap_bytes: peak,
            stalled: false,
        }
    }

    #[test]
    fn latest_snapshot_export_is_valid_and_complete() {
        let text = openmetrics(&snap(1_000_000, 42, Some(1 << 20)));
        validate_openmetrics(&text).expect("valid OpenMetrics");
        assert!(text.contains("# TYPE tablog_steps counter\n"));
        assert!(text.contains("tablog_steps_total 100\n"));
        assert!(text.contains("tablog_worklist_depth{class=\"expand\"} 3\n"));
        assert!(text.contains("tablog_worklist_depth{class=\"return\"} 2\n"));
        assert!(text.contains("tablog_answer_rate 250.5\n"));
        assert!(text.contains("tablog_peak_heap_bytes 1048576\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn heap_family_is_omitted_without_tracking_allocator() {
        let text = openmetrics(&snap(1, 1, None));
        validate_openmetrics(&text).expect("valid OpenMetrics");
        assert!(!text.contains("tablog_peak_heap_bytes"));
    }

    #[test]
    fn series_export_carries_second_timestamps() {
        let series = [snap(500_000_000, 10, None), snap(1_500_000_000, 20, None)];
        let text = openmetrics_series(&series);
        validate_openmetrics(&text).expect("valid OpenMetrics");
        assert!(text.contains("tablog_answers_total 10 0.500000000\n"));
        assert!(text.contains("tablog_answers_total 20 1.500000000\n"));
        // One TYPE declaration per family even with multiple samples.
        assert_eq!(text.matches("# TYPE tablog_answers ").count(), 1);
    }

    #[test]
    fn worker_export_labels_last_sample_per_worker() {
        let s = |worker: usize, t_ns: u64, answers: usize| CounterSample {
            t_ns,
            worklist: 2,
            expands: 1,
            returns: 1,
            tables: 3,
            answers,
            table_bytes: 256,
            msgs_sent: 4,
            worker: Some(worker),
        };
        let untagged = CounterSample::default();
        let text = openmetrics_workers(&[s(1, 10, 5), untagged, s(0, 20, 7), s(1, 30, 9)]);
        validate_openmetrics(&text).expect("valid OpenMetrics");
        // Last sample per worker wins; worker labels are sorted.
        assert!(
            text.contains("tablog_worker_answers{worker=\"0\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("tablog_worker_answers{worker=\"1\"} 9\n"),
            "{text}"
        );
        assert!(
            text.contains("tablog_worker_msgs_sent{worker=\"1\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("tablog_worker_table_bytes{worker=\"0\"} 256\n"),
            "{text}"
        );
        // The untagged sequential sample contributes nothing.
        assert!(!text.contains("worker=\"\""), "{text}");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn validator_rejects_format_violations() {
        // Missing EOF.
        assert!(validate_openmetrics("# TYPE x gauge\nx 1\n").is_err());
        // Sample without a TYPE declaration.
        assert!(validate_openmetrics("x 1\n# EOF\n")
            .unwrap_err()
            .contains("no preceding # TYPE"));
        // Counter sample without the _total suffix.
        let text = "# TYPE c counter\nc 1\n# EOF\n";
        assert!(validate_openmetrics(text).unwrap_err().contains("_total"));
        // Content after EOF.
        assert!(validate_openmetrics("# EOF\nx 1\n").is_err());
        // Unparseable value.
        assert!(validate_openmetrics("# TYPE x gauge\nx abc\n# EOF\n").is_err());
        // Duplicate TYPE.
        assert!(validate_openmetrics("# TYPE x gauge\n# TYPE x gauge\n# EOF\n").is_err());
    }
}
