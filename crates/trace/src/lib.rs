//! Observability for the SLG engine: trace events, sinks, and metrics.
//!
//! The paper's argument is quantitative — Tables 1–4 report per-benchmark
//! times and table space — but aggregate counters cannot say *where* steps,
//! answers, or bytes go. This crate provides the instrumentation layer the
//! engine emits into:
//!
//! * [`TraceEvent`] — a typed, borrowed event for every interesting SLG
//!   transition (new subgoal, clause resolution, answer insert/duplicate/
//!   return, call abstraction, answer widening, subsumed call, completion).
//! * [`TraceSink`] — the consumer interface. The engine holds an
//!   `Option<&dyn TraceSink>`; with `None` installed, no event is ever
//!   constructed, so tracing has zero cost when disabled.
//! * Ready-made sinks: [`NoopSink`], [`CountingSink`], [`JsonLinesSink`],
//!   [`RingBufferSink`], and [`MultiSink`] for fan-out.
//! * [`MetricsRegistry`] — a sink that rolls events up into per-predicate
//!   [`PredStats`] plus named phase timings, snapshotting into a
//!   [`MetricsReport`] with XSB-style text and JSON renderings.
//!
//! Events borrow the engine's canonical terms; sinks that need to retain
//! them convert to [`OwnedEvent`] via [`TraceEvent::to_owned`].

pub mod chrome;
pub mod counter;
pub mod event;
pub mod flow;
pub mod folded;
pub mod forest;
pub mod health;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod sink;
pub mod span;

pub use chrome::{chrome_trace, chrome_trace_with_flows, CHROME_COUNTER_TRACKS};
pub use counter::{CounterSample, CounterTrack};
pub use event::{OwnedEvent, TraceEvent};
pub use flow::{FlowEvent, MsgKind};
pub use folded::{folded_frames, folded_stacks};
pub use forest::{Forest, ForestAnswer, ForestSubgoal};
pub use health::{HealthSnapshot, HealthTrack, StallWatchdog};
pub use metrics::{EngineSnapshot, MetricsRegistry, MetricsReport, PredStats};
pub use openmetrics::{openmetrics, openmetrics_series, openmetrics_workers, validate_openmetrics};
pub use sink::{
    CountingSink, JsonLinesSink, MultiSink, NoopSink, RingBufferSink, SharedBuf, TraceSink,
};
pub use span::{now_ns, SpanEmitter, SpanEvent, SpanId, SpanRecorder, SpanRollup, SpanTree};
