//! Collapsed-stack ("folded") export of a [`SpanTree`], the text format
//! consumed by Brendan Gregg's `flamegraph.pl` and by `inferno`:
//!
//! ```text
//! analysis;evaluate;dispatch:gp$app/3 12345
//! ```
//!
//! One line per distinct span stack, frames joined by `;`, followed by a
//! space and a count. The count is the aggregated *self* time of that stack
//! in nanoseconds, so the frames of one tree partition wall-clock time —
//! exactly the invariant flame graphs assume. A frame is the span name,
//! suffixed with `:pred/arity` when the span is attributed to a predicate.
//!
//! Lines are sorted lexicographically by stack, so the set and order of
//! lines is deterministic for a deterministic evaluation (the depth-first
//! scheduler); only the trailing counts vary run to run.

use crate::span::SpanTree;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The frame label of one span: `name` or `name:pred/arity`.
fn frame(name: &str, pred: Option<&str>) -> String {
    match pred {
        Some(p) => format!("{name}:{p}"),
        None => name.to_string(),
    }
}

/// Renders the tree as folded stacks, aggregating self-time per stack.
pub fn folded_stacks(tree: &SpanTree) -> String {
    // Emission order puts parents before children, so one forward pass can
    // reuse each parent's already-built path.
    let mut paths: Vec<String> = Vec::with_capacity(tree.nodes.len());
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for n in &tree.nodes {
        let f = frame(&n.name, n.pred.as_deref());
        let path = match n.parent {
            Some(p) => format!("{};{}", paths[p], f),
            None => f,
        };
        *agg.entry(path.clone()).or_insert(0) += n.self_ns;
        paths.push(path);
    }
    let mut out = String::new();
    for (stack, ns) in agg {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// The stacks of a folded rendering with their counts stripped — the
/// deterministic part, which golden tests pin.
pub fn folded_frames(folded: &str) -> Vec<String> {
    folded
        .lines()
        .filter_map(|l| l.rsplit_once(' ').map(|(stack, _)| stack.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanEmitter, SpanRecorder};
    use tablog_term::Functor;

    fn sample_tree() -> SpanTree {
        let rec = SpanRecorder::new();
        let mut em = SpanEmitter::new();
        em.enter(&rec, "analysis", None);
        em.enter(&rec, "evaluate", None);
        for _ in 0..2 {
            em.enter(&rec, "dispatch", Some(Functor::new("p", 2)));
            em.enter(&rec, "clause_resolution", Some(Functor::new("q", 1)));
            em.exit(&rec);
            em.exit(&rec);
        }
        em.exit(&rec);
        em.exit(&rec);
        rec.snapshot()
    }

    #[test]
    fn folded_lines_have_stack_space_count_shape() {
        let text = folded_stacks(&sample_tree());
        assert!(!text.is_empty());
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space separator");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("numeric count");
        }
    }

    #[test]
    fn stacks_aggregate_and_sort_deterministically() {
        let frames = folded_frames(&folded_stacks(&sample_tree()));
        assert_eq!(
            frames,
            vec![
                "analysis".to_string(),
                "analysis;evaluate".to_string(),
                "analysis;evaluate;dispatch:p/2".to_string(),
                "analysis;evaluate;dispatch:p/2;clause_resolution:q/1".to_string(),
            ]
        );
    }

    #[test]
    fn folded_counts_sum_to_root_totals() {
        let tree = sample_tree();
        let text = folded_stacks(&tree);
        let total: u64 = text
            .lines()
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, c)| c.parse::<u64>().ok()))
            .sum();
        let roots: u64 = tree.roots.iter().map(|&r| tree.nodes[r].total_ns).sum();
        assert_eq!(total, roots);
    }
}
