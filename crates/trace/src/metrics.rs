//! Per-predicate metrics rolled up from trace events.
//!
//! [`MetricsRegistry`] is itself a [`TraceSink`]: install it in the engine
//! (alone or fanned out with other sinks via `MultiSink`) and it aggregates
//! every event into a [`PredStats`] row per functor, XSB's
//! `statistics/0`-style view. Analyzers add their phase wall-clock times
//! with [`MetricsRegistry::record_phases`]; [`MetricsRegistry::snapshot`]
//! freezes everything into a [`MetricsReport`] for rendering.

use crate::counter::{CounterSample, CounterTrack};
use crate::event::TraceEvent;
use crate::health::{HealthSnapshot, HealthTrack};
use crate::json::escape;
use crate::sink::TraceSink;
use crate::span::{SpanEvent, SpanId, SpanRecorder, SpanTree};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use tablog_term::Functor;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counters for one predicate (one table functor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Distinct tabled subgoals created.
    pub subgoals: u64,
    /// Answers admitted into tables.
    pub answers: u64,
    /// Answers re-derived and rejected as variant duplicates.
    pub duplicate_answers: u64,
    /// Program-clause resolutions performed.
    pub clause_resolutions: u64,
    /// Answers returned to consumer nodes.
    pub answer_returns: u64,
    /// Calls absorbed by forward subsumption.
    pub subsumed_calls: u64,
    /// Calls rewritten by the call-abstraction hook.
    pub calls_abstracted: u64,
    /// Answers rewritten by the answer-widening hook.
    pub answers_widened: u64,
    /// Subgoals marked complete.
    pub completed: u64,
    /// Heap bytes charged to this predicate's tables.
    pub table_bytes: u64,
}

impl PredStats {
    /// Adds `other` into `self`, field by field.
    pub fn absorb(&mut self, other: &PredStats) {
        self.subgoals += other.subgoals;
        self.answers += other.answers;
        self.duplicate_answers += other.duplicate_answers;
        self.clause_resolutions += other.clause_resolutions;
        self.answer_returns += other.answer_returns;
        self.subsumed_calls += other.subsumed_calls;
        self.calls_abstracted += other.calls_abstracted;
        self.answers_widened += other.answers_widened;
        self.completed += other.completed;
        self.table_bytes += other.table_bytes;
    }

    /// Renders this row's fields as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"subgoals\":{},\"answers\":{},\"duplicate_answers\":{},\
             \"clause_resolutions\":{},\"answer_returns\":{},\"subsumed_calls\":{},\
             \"calls_abstracted\":{},\"answers_widened\":{},\"completed\":{},\
             \"table_bytes\":{}}}",
            self.subgoals,
            self.answers,
            self.duplicate_answers,
            self.clause_resolutions,
            self.answer_returns,
            self.subsumed_calls,
            self.calls_abstracted,
            self.answers_widened,
            self.completed,
            self.table_bytes
        )
    }
}

/// Global engine counters of one evaluation, stamped into a
/// [`MetricsReport`] so a single `stats --json` run captures the full
/// snapshot: which scheduler ran and its step/answer counters (previously
/// only available through the bench harness's per-strategy rows).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Scheduling strategy name (`depth_first`, `breadth_first`, `batched`).
    pub scheduler: String,
    /// Prop-domain backend name (`table`, `bdd`) — the representation the
    /// analysis manipulated its boolean formulae in. Empty when the
    /// producer predates domain selection.
    pub domain: String,
    /// Worklist steps executed.
    pub steps: u64,
    /// Program-clause resolution attempts.
    pub clause_resolutions: u64,
    /// Tabled subgoals created.
    pub subgoals: u64,
    /// Unique answers entered into tables.
    pub answers: u64,
    /// Answers rejected as variant duplicates.
    pub duplicate_answers: u64,
    /// Estimated total table space in bytes.
    pub table_bytes: u64,
}

impl EngineSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"domain\":\"{}\",\"steps\":{},\"clause_resolutions\":{},\
             \"subgoals\":{},\"answers\":{},\"duplicate_answers\":{},\"table_bytes\":{}}}",
            escape(&self.scheduler),
            escape(&self.domain),
            self.steps,
            self.clause_resolutions,
            self.subgoals,
            self.answers,
            self.duplicate_answers,
            self.table_bytes
        )
    }
}

/// A [`TraceSink`] accumulating per-predicate statistics and phase timings.
/// Spans (when the engine records them) are retained too and rolled up into
/// the snapshot's [`SpanTree`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    preds: Mutex<BTreeMap<Functor, PredStats>>,
    phases: Mutex<Vec<(String, Duration)>>,
    spans: SpanRecorder,
    counters: CounterTrack,
    health: HealthTrack,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one named phase duration (e.g. `"analysis"`). Recording the
    /// same name again accumulates, so repeated evaluations sum up.
    pub fn record_phase(&self, name: &str, d: Duration) {
        let mut phases = lock(&self.phases);
        if let Some(entry) = phases.iter_mut().find(|(n, _)| n == name) {
            entry.1 += d;
        } else {
            phases.push((name.to_string(), d));
        }
    }

    /// Records several phases at once, in display order. Compatible with
    /// `PhaseTimings` in `tablog-core`: pass its three fields by name.
    pub fn record_phases(&self, phases: &[(&str, Duration)]) {
        for (name, d) in phases {
            self.record_phase(name, *d);
        }
    }

    /// Current statistics for one predicate.
    pub fn pred(&self, f: Functor) -> PredStats {
        lock(&self.preds).get(&f).copied().unwrap_or_default()
    }

    /// The span recorder behind this registry's span-tree rollup — hand it
    /// to [`SpanTree`]-consuming helpers directly when the full tree is
    /// needed (e.g. folded-stack export).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// The counter time-series recorded through this registry — populated
    /// when the engine ran with `record_counters` on, empty otherwise.
    pub fn counters(&self) -> &CounterTrack {
        &self.counters
    }

    /// The run-health snapshots recorded through this registry — populated
    /// when the engine ran with a health config, empty otherwise.
    pub fn health(&self) -> &HealthTrack {
        &self.health
    }

    /// Freezes the current state into a report.
    pub fn snapshot(&self) -> MetricsReport {
        let mut preds: Vec<(String, PredStats)> = lock(&self.preds)
            .iter()
            .map(|(f, s)| (f.to_string(), *s))
            .collect();
        // BTreeMap order is interning order of `Sym`; sort by display name
        // so reports are stable across runs with different load orders.
        preds.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsReport {
            preds,
            phases: lock(&self.phases).clone(),
            options: Vec::new(),
            spans: self.spans.snapshot(),
            engine: None,
        }
    }
}

impl TraceSink for MetricsRegistry {
    fn event(&self, e: &TraceEvent<'_>) {
        let mut preds = lock(&self.preds);
        let s = preds.entry(e.pred()).or_default();
        match *e {
            TraceEvent::NewSubgoal { bytes, .. } => {
                s.subgoals += 1;
                s.table_bytes += bytes as u64;
            }
            TraceEvent::ClauseResolution { .. } => s.clause_resolutions += 1,
            TraceEvent::AnswerInsert { bytes, .. } => {
                s.answers += 1;
                s.table_bytes += bytes as u64;
            }
            TraceEvent::DuplicateAnswer { .. } => s.duplicate_answers += 1,
            TraceEvent::AnswerReturn { .. } => s.answer_returns += 1,
            TraceEvent::CallAbstracted { .. } => s.calls_abstracted += 1,
            TraceEvent::AnswerWidened { .. } => s.answers_widened += 1,
            TraceEvent::SubsumedCall { .. } => s.subsumed_calls += 1,
            // Bytes were charged incrementally on NewSubgoal/AnswerInsert,
            // so completion only counts the table as finished.
            TraceEvent::SubgoalComplete { .. } => s.completed += 1,
        }
    }

    fn span_enter(&self, s: &SpanEvent<'_>) {
        self.spans.span_enter(s);
    }

    fn span_exit(&self, id: SpanId, t_ns: u64) {
        self.spans.span_exit(id, t_ns);
    }

    fn counter_sample(&self, s: &CounterSample) {
        self.counters.record(s);
    }

    fn health(&self, s: &HealthSnapshot) {
        self.health.record(s);
    }
}

/// A frozen view of a [`MetricsRegistry`]: per-predicate rows (sorted by
/// predicate name) plus named phase timings in recording order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// `("name/arity", stats)` rows, sorted by name.
    pub preds: Vec<(String, PredStats)>,
    /// `(phase name, wall-clock)` in recording order.
    pub phases: Vec<(String, Duration)>,
    /// Engine options in effect for the run, as `(name, value)` pairs —
    /// stamped by the producer (e.g. `EngineOptions::describe()`) so
    /// reports are self-describing; empty when not stamped.
    pub options: Vec<(String, String)>,
    /// Span tree rolled up from recorded spans; empty unless the run had
    /// span recording enabled.
    pub spans: SpanTree,
    /// Global engine counters of the evaluation — stamped by the producer
    /// (the `tablog stats` command, the analyzers); `None` when not
    /// stamped.
    pub engine: Option<EngineSnapshot>,
}

impl MetricsReport {
    /// Sum of all per-predicate rows.
    pub fn totals(&self) -> PredStats {
        let mut t = PredStats::default();
        for (_, s) in &self.preds {
            t.absorb(s);
        }
        t
    }

    /// Stats for one predicate, by `"name/arity"` key.
    pub fn pred(&self, key: &str) -> Option<&PredStats> {
        self.preds.iter().find(|(k, _)| k == key).map(|(_, s)| s)
    }

    /// Renders an XSB-`statistics/0`-style fixed-width table.
    pub fn render_text(&self) -> String {
        let name_w = self
            .preds
            .iter()
            .map(|(k, _)| k.len())
            .chain(["predicate".len(), "total".len()])
            .max()
            .unwrap_or(9);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$} {:>9} {:>9} {:>6} {:>12} {:>9} {:>7} {:>12}",
            "predicate",
            "subgoals",
            "answers",
            "dups",
            "resolutions",
            "returns",
            "compl",
            "table bytes"
        );
        let width = name_w + 9 + 9 + 6 + 12 + 9 + 7 + 12 + 7;
        let _ = writeln!(out, "{}", "-".repeat(width));
        for (key, s) in &self.preds {
            let _ = writeln!(
                out,
                "{key:<name_w$} {:>9} {:>9} {:>6} {:>12} {:>9} {:>7} {:>12}",
                s.subgoals,
                s.answers,
                s.duplicate_answers,
                s.clause_resolutions,
                s.answer_returns,
                s.completed,
                s.table_bytes
            );
        }
        let t = self.totals();
        let _ = writeln!(out, "{}", "-".repeat(width));
        let _ = writeln!(
            out,
            "{:<name_w$} {:>9} {:>9} {:>6} {:>12} {:>9} {:>7} {:>12}",
            "total",
            t.subgoals,
            t.answers,
            t.duplicate_answers,
            t.clause_resolutions,
            t.answer_returns,
            t.completed,
            t.table_bytes
        );
        if t.subsumed_calls + t.calls_abstracted + t.answers_widened > 0 {
            let _ = writeln!(
                out,
                "subsumed calls: {}   calls abstracted: {}   answers widened: {}",
                t.subsumed_calls, t.calls_abstracted, t.answers_widened
            );
        }
        if !self.phases.is_empty() {
            let total: Duration = self.phases.iter().map(|(_, d)| *d).sum();
            let mut line = String::from("phases:");
            for (name, d) in &self.phases {
                let _ = write!(line, " {name} {:.3}ms", d.as_secs_f64() * 1e3);
            }
            let _ = write!(line, "  total {:.3}ms", total.as_secs_f64() * 1e3);
            let _ = writeln!(out, "{line}");
        }
        if !self.options.is_empty() {
            let mut line = String::from("options:");
            for (name, value) in &self.options {
                let _ = write!(line, " {name}={value}");
            }
            let _ = writeln!(out, "{line}");
        }
        if let Some(e) = &self.engine {
            let _ = writeln!(
                out,
                "engine: scheduler={} domain={} steps={} resolutions={} subgoals={} \
                 answers={} duplicates={} table_bytes={}",
                e.scheduler,
                if e.domain.is_empty() {
                    "table"
                } else {
                    &e.domain
                },
                e.steps,
                e.clause_resolutions,
                e.subgoals,
                e.answers,
                e.duplicate_answers,
                e.table_bytes
            );
        }
        if !self.spans.is_empty() {
            out.push_str(&self.spans.render_text());
        }
        out
    }

    /// Renders the whole report as a JSON object:
    /// `{"predicates": {"p/2": {...}}, "totals": {...}, "phases_us": {...},
    /// "options": {...}}` where phase durations are integer microseconds and
    /// options are the stamped engine-option strings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"predicates\":{");
        for (i, (key, s)) in self.preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), s.to_json());
        }
        let _ = write!(out, "}},\"totals\":{}", self.totals().to_json());
        out.push_str(",\"phases_us\":{");
        for (i, (name, d)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), d.as_micros());
        }
        out.push_str("},\"options\":{");
        for (i, (name, value)) in self.options.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(name), escape(value));
        }
        out.push('}');
        if let Some(e) = &self.engine {
            let _ = write!(out, ",\"engine\":{}", e.to_json());
        }
        if !self.spans.is_empty() {
            let _ = write!(out, ",\"spans\":{}", self.spans.to_json());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_term::{atom, structure, var, Term, Var};

    fn feed(reg: &MetricsRegistry) {
        let p = Functor::new("p", 2);
        let q = Functor::new("q", 1);
        let k: Vec<Term> = vec![structure("p", vec![var(Var(0)), atom("a")])];
        reg.event(&TraceEvent::NewSubgoal {
            pred: p,
            call: &k,
            bytes: 48,
        });
        reg.event(&TraceEvent::ClauseResolution { pred: p });
        reg.event(&TraceEvent::ClauseResolution { pred: p });
        reg.event(&TraceEvent::AnswerInsert {
            pred: p,
            answer: &k,
            bytes: 40,
        });
        reg.event(&TraceEvent::DuplicateAnswer {
            pred: p,
            answer: &k,
        });
        reg.event(&TraceEvent::AnswerReturn { pred: p });
        reg.event(&TraceEvent::SubgoalComplete {
            pred: p,
            answers: 1,
            bytes: 88,
        });
        reg.event(&TraceEvent::NewSubgoal {
            pred: q,
            call: &k,
            bytes: 16,
        });
        reg.event(&TraceEvent::CallAbstracted {
            pred: q,
            original: &k,
            abstracted: &k,
        });
        reg.event(&TraceEvent::AnswerWidened {
            pred: q,
            original: &k,
            widened: &k,
        });
        reg.event(&TraceEvent::SubsumedCall {
            pred: q,
            call: &k,
            subsumer: &k,
        });
    }

    #[test]
    fn rolls_events_into_per_predicate_rows() {
        let reg = MetricsRegistry::new();
        feed(&reg);
        let p = reg.pred(Functor::new("p", 2));
        assert_eq!(p.subgoals, 1);
        assert_eq!(p.answers, 1);
        assert_eq!(p.duplicate_answers, 1);
        assert_eq!(p.clause_resolutions, 2);
        assert_eq!(p.answer_returns, 1);
        assert_eq!(p.completed, 1);
        assert_eq!(p.table_bytes, 88);
        let q = reg.pred(Functor::new("q", 1));
        assert_eq!(q.calls_abstracted, 1);
        assert_eq!(q.answers_widened, 1);
        assert_eq!(q.subsumed_calls, 1);
        assert_eq!(q.table_bytes, 16);
    }

    #[test]
    fn snapshot_sorts_and_totals() {
        let reg = MetricsRegistry::new();
        feed(&reg);
        let report = reg.snapshot();
        let keys: Vec<_> = report.preds.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["p/2", "q/1"]);
        let t = report.totals();
        assert_eq!(t.subgoals, 2);
        assert_eq!(t.table_bytes, 104);
    }

    #[test]
    fn phases_accumulate_by_name() {
        let reg = MetricsRegistry::new();
        reg.record_phases(&[
            ("preprocess", Duration::from_micros(100)),
            ("analysis", Duration::from_micros(200)),
        ]);
        reg.record_phase("analysis", Duration::from_micros(50));
        let report = reg.snapshot();
        assert_eq!(
            report.phases,
            vec![
                ("preprocess".to_string(), Duration::from_micros(100)),
                ("analysis".to_string(), Duration::from_micros(250)),
            ]
        );
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let reg = MetricsRegistry::new();
        feed(&reg);
        reg.record_phase("analysis", Duration::from_micros(1500));
        let v = crate::json::parse(&reg.snapshot().to_json()).expect("valid JSON");
        let p = v.get("predicates").unwrap().get("p/2").unwrap();
        for field in [
            "subgoals",
            "answers",
            "duplicate_answers",
            "clause_resolutions",
            "table_bytes",
        ] {
            assert!(p.get(field).is_some(), "missing field {field}");
        }
        assert_eq!(p.get("answers").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("totals").unwrap().get("subgoals").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.get("phases_us")
                .unwrap()
                .get("analysis")
                .unwrap()
                .as_f64(),
            Some(1500.0)
        );
    }

    #[test]
    fn text_render_lists_every_predicate_and_total() {
        let reg = MetricsRegistry::new();
        feed(&reg);
        let text = reg.snapshot().render_text();
        assert!(text.contains("p/2"));
        assert!(text.contains("q/1"));
        assert!(text.contains("total"));
        assert!(text.contains("calls abstracted: 1"));
    }
}
