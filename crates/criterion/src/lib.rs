//! An offline, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace's benches were written against the real criterion API, but
//! this build environment has no access to crates.io. This crate implements
//! the subset the benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — as a plain
//! wall-clock harness with no statistics, plots, or baselines.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), each benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark. In `--test` mode the body executes once,
    /// untimed; otherwise it is timed over `sample_size` samples and the
    /// mean is printed.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {}/{} ... ok", self.name, id);
        } else if bencher.iters > 0 {
            let mean = bencher.elapsed / bencher.iters as u32;
            println!(
                "{}/{}: {:?}/iter ({} iters)",
                self.name, id, mean, bencher.iters
            );
        }
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times a closure over a fixed number of iterations.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Runs `routine` once per sample, accumulating wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iters += 1;
            std::hint::black_box(out);
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body_and_counts_iters() {
        let mut c = Criterion { test_mode: false };
        let mut count = 0usize;
        let mut g = c.benchmark_group("g");
        g.sample_size(5)
            .bench_function("f", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 5);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0usize;
        let mut g = c.benchmark_group("g");
        g.sample_size(50)
            .bench_function("f", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
