//! The Prop domain's enumerative representation — re-exported from
//! [`tablog_domain`], where it now lives beside the BDD backend behind the
//! shared [`tablog_domain::AbstractDomain`] trait. Existing users of
//! `tablog_core::prop::PropTable` keep working unchanged.

pub use tablog_domain::prop::{PropTable, MAX_VARS};
