//! Prop-domain groundness analysis of logic programs — the paper's
//! Figure 1 transformation plus the analysis driver.
//!
//! A source program `P` is transformed into an abstract program `P♯` over
//! the boolean constants `true`/`false`: predicate `p/n` becomes `gp$p/n`,
//! each source variable `X` is tracked by a groundness variable `τX`, and
//! each head argument or body-literal argument `t` contributes the
//! constraint `iff(α, vars(t))` — `α ⇔ AND of τ`s — represented
//! enumeratively by its truth table. Evaluating `P♯` on the tabled engine
//! computes the **output groundness** (the success set of `gp$p` is the
//! truth table of `p`'s groundness formula) and, because tabling records
//! calls, the **input groundness** for free (Section 3.1).

use crate::error::AnalysisError;
use crate::explain::AnalysisExplanation;
use crate::pipeline::{PhaseTimings, Timer};
use crate::prop::PropTable;
use std::collections::BTreeMap;
use tablog_domain::{value_from_partial_rows, AbstractDomain, BddDomain, DomainKind, TableDomain};
use tablog_engine::{Database, Engine, EngineOptions, LoadMode, TableStats};
use tablog_magic::Rule;
use tablog_syntax::{parse_program, Program};
use tablog_term::{atom, intern, structure, sym_name, Bindings, Functor, Term, Var};
use tablog_trace::MetricsReport;

/// How `iff` constraints are represented in the abstract program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IffMode {
    /// The native `$iff/N` builtin, which enumerates its truth table
    /// lazily against the current bindings (the default).
    #[default]
    Builtin,
    /// Explicit fact predicates `iff$k/(k+1)` holding all `2^k` rows —
    /// the fully enumerative representation of the paper's citation \[8\].
    Facts,
}

/// Name prefix of abstract predicates.
pub const GP_PREFIX: &str = "gp$";

/// The set of `(name, arity)` pairs of source predicates seen by a
/// transformation (a `BTreeMap` keyed for deterministic order).
pub type PredSet = BTreeMap<(tablog_term::Sym, usize), ()>;

/// An entry point for goal-directed analysis: which arguments of the
/// predicate are ground at the initial call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EntryPoint {
    /// Predicate name.
    pub name: String,
    /// Ground/unknown flags, one per argument.
    pub ground_args: Vec<bool>,
}

impl EntryPoint {
    /// Builds an entry point; `spec` holds one flag per argument
    /// (`true` = ground at call).
    pub fn new(name: &str, spec: &[bool]) -> Self {
        EntryPoint {
            name: name.to_owned(),
            ground_args: spec.to_vec(),
        }
    }

    /// Parses `"qsort(g, f)"`-style notation: `g`round / `f`ree.
    ///
    /// # Errors
    ///
    /// Fails on malformed specs.
    pub fn parse(spec: &str) -> Result<Self, AnalysisError> {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(spec, &mut b)
            .map_err(|e| AnalysisError::Parse(e.to_string()))?;
        let f = t
            .functor()
            .ok_or_else(|| AnalysisError::Parse(format!("bad entry spec {spec}")))?;
        let ground_args = t
            .args()
            .iter()
            .map(|a| match a {
                Term::Atom(s) if sym_name(*s) == "g" => Ok(true),
                Term::Atom(s) if sym_name(*s) == "f" => Ok(false),
                other => Err(AnalysisError::Parse(format!(
                    "entry argument must be g or f, found {other}"
                ))),
            })
            .collect::<Result<Vec<bool>, _>>()?;
        Ok(EntryPoint {
            name: sym_name(f.name),
            ground_args,
        })
    }
}

/// Groundness results for one predicate.
#[derive(Clone, Debug)]
pub struct PredGroundness {
    /// Source predicate name.
    pub name: String,
    /// Source predicate arity.
    pub arity: usize,
    /// Success set: one row per table answer; `None` marks an argument
    /// whose groundness is unconstrained in that answer.
    pub success_rows: Vec<Vec<Option<bool>>>,
    /// Per-argument meet over all answers — the paper's combined result
    /// (`p(true,false,true) ⊓ p(true,true,false) = p(true,false,false)`).
    pub definitely_ground: Vec<bool>,
    /// The output groundness formula as a truth table over the arguments.
    pub prop: PropTable,
    /// Call patterns recorded in the call table — the input groundness.
    pub call_patterns: Vec<Vec<Option<bool>>>,
}

/// The complete result of a groundness analysis run.
#[derive(Clone, Debug)]
pub struct GroundnessReport {
    preds: BTreeMap<(String, usize), PredGroundness>,
    /// Phase timings (preprocess / analysis / collection).
    pub timings: PhaseTimings,
    /// Engine statistics, including table space.
    pub stats: TableStats,
    /// Prop-domain backend the collection phase ran on (from
    /// [`EngineOptions::domain`]).
    pub domain: DomainKind,
    /// Backend-private bytes — the BDD manager's arena and memo tables
    /// under [`DomainKind::Bdd`], 0 under the enumerative backend (whose
    /// tables are charged through the engine's accounting already).
    pub domain_bytes: usize,
    /// Live BDD nodes allocated during collection (0 under
    /// [`DomainKind::Table`]).
    pub bdd_nodes: usize,
    /// Per-predicate engine metrics; present iff the analyzer's
    /// [`profile`](GroundnessAnalyzer::profile) flag was set. Predicate
    /// keys are the abstract program's (`gp$p/n`, `$ga/0`).
    pub metrics: Option<MetricsReport>,
    /// Per-worker load and message-flow attribution, `Some` exactly when
    /// the analysis ran under the parallel scheduler (see
    /// [`tablog_engine::ParallelReport`]).
    pub parallel: Option<tablog_engine::ParallelReport>,
}

impl GroundnessReport {
    /// Result for one predicate.
    pub fn output_groundness(&self, name: &str, arity: usize) -> Option<&PredGroundness> {
        self.preds.get(&(name.to_owned(), arity))
    }

    /// All analyzed predicates, sorted by name.
    pub fn predicates(&self) -> impl Iterator<Item = &PredGroundness> {
        self.preds.values()
    }

    /// Total table space in bytes (the paper's last column), including any
    /// backend-private memory so `--domain bdd` runs account the manager
    /// arena alongside the engine's tables.
    pub fn table_bytes(&self) -> usize {
        self.stats.table_bytes + self.domain_bytes
    }
}

/// The groundness analyzer: configuration + entry points into analysis.
#[derive(Clone, Debug, Default)]
pub struct GroundnessAnalyzer {
    /// Representation of `iff` constraints.
    pub iff_mode: IffMode,
    /// Clause store mode (the dynamic-vs-compiled trade-off of Section 4).
    pub load_mode: LoadMode,
    /// Engine options (scheduling, subsumption, …).
    pub options: EngineOptions,
    /// Collect per-predicate engine metrics and phase timings into
    /// [`GroundnessReport::metrics`]. Composes with an existing
    /// `options.trace` sink via fan-out.
    pub profile: bool,
}

impl GroundnessAnalyzer {
    /// An analyzer with the paper's default configuration: dynamic loading,
    /// builtin `iff`, depth-first scheduling.
    pub fn new() -> Self {
        GroundnessAnalyzer::default()
    }

    /// Parses and analyzes `src` with fully open calls (output groundness
    /// of every predicate; input patterns reflect internal calls).
    ///
    /// # Errors
    ///
    /// Returns parse, transformation, or engine errors.
    pub fn analyze_source(&self, src: &str) -> Result<GroundnessReport, AnalysisError> {
        let mut timer = Timer::start();
        let program = parse_program(src)?;
        self.analyze_program_timed(&program, &[], timer.lap())
    }

    /// Analyzes a parsed program with fully open calls.
    ///
    /// # Errors
    ///
    /// Returns transformation or engine errors.
    pub fn analyze_program(&self, program: &Program) -> Result<GroundnessReport, AnalysisError> {
        self.analyze_program_timed(program, &[], std::time::Duration::ZERO)
    }

    /// Goal-directed analysis from the given entry points: only predicates
    /// reachable from the entries are analyzed, and call patterns reflect
    /// the entry instantiation.
    ///
    /// # Errors
    ///
    /// Returns transformation or engine errors.
    pub fn analyze_with_entries(
        &self,
        program: &Program,
        entries: &[EntryPoint],
    ) -> Result<GroundnessReport, AnalysisError> {
        self.analyze_program_timed(program, entries, std::time::Duration::ZERO)
    }

    /// Builds the abstract database: the transformed rules, tabling
    /// declarations, and the `$ga` driver clauses (one per analyzed call
    /// pattern). Shared by [`analyze`](GroundnessAnalyzer::analyze_program)
    /// and [`explain`](GroundnessAnalyzer::explain).
    fn load_abstract(
        &self,
        program: &Program,
        entries: &[EntryPoint],
    ) -> Result<(Database, PredSet), AnalysisError> {
        let (rules, preds) = transform_program(program, self.iff_mode)?;
        let mut db = Database::new(self.load_mode);
        for r in &rules {
            db.assert_clause(r.head.clone(), r.body.clone())?;
        }
        for &(name, arity) in preds.keys() {
            db.set_tabled(gp_functor(name, arity), true);
        }
        let mut b = Bindings::new();
        if entries.is_empty() {
            for &(name, arity) in preds.keys() {
                let args: Vec<Term> = (0..arity).map(|_| Term::Var(b.fresh_var())).collect();
                let goal = build(gp_functor(name, arity), args);
                db.assert_clause(atom("$ga"), vec![goal])?;
            }
        } else {
            for e in entries {
                let args: Vec<Term> = e
                    .ground_args
                    .iter()
                    .map(|&g| {
                        if g {
                            atom("true")
                        } else {
                            Term::Var(b.fresh_var())
                        }
                    })
                    .collect();
                let goal = build(gp_functor(intern(&e.name), e.ground_args.len()), args);
                db.assert_clause(atom("$ga"), vec![goal])?;
            }
        }
        if self.load_mode == LoadMode::Compiled {
            db.build_indexes();
        }
        Ok((db, preds))
    }

    /// Explains one groundness answer: maps `goal` — a source-level call
    /// whose arguments are `g` (ground), `f` (possibly non-ground) or
    /// variables — onto the abstract predicate `gp$p` and returns the
    /// justification trees of every matching abstract answer.
    ///
    /// # Errors
    ///
    /// Returns parse errors (including non-`g`/`f` arguments),
    /// transformation errors, or engine errors.
    pub fn explain(
        &self,
        program: &Program,
        goal: &str,
        max_depth: usize,
    ) -> Result<AnalysisExplanation, AnalysisError> {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b)
            .map_err(|e| AnalysisError::Parse(e.to_string()))?;
        let f = t
            .functor()
            .ok_or_else(|| AnalysisError::Parse(format!("bad goal {goal}")))?;
        let args: Vec<Term> = t
            .args()
            .iter()
            .map(|a| match a {
                Term::Atom(s) if matches!(sym_name(*s).as_str(), "g" | "true") => Ok(atom("true")),
                Term::Atom(s) if matches!(sym_name(*s).as_str(), "f" | "false") => {
                    Ok(atom("false"))
                }
                Term::Var(v) => Ok(Term::Var(*v)),
                other => Err(AnalysisError::Parse(format!(
                    "groundness goal argument must be g, f or a variable, found {other}"
                ))),
            })
            .collect::<Result<_, _>>()?;
        let (db, _) = self.load_abstract(program, &[])?;
        let engine = Engine::new(db, self.options.clone());
        let abstract_term = build(gp_functor(f.name, f.arity), args);
        crate::explain::explain_abstract(&engine, goal, &abstract_term, &b, max_depth)
    }

    fn analyze_program_timed(
        &self,
        program: &Program,
        entries: &[EntryPoint],
        parse_time: std::time::Duration,
    ) -> Result<GroundnessReport, AnalysisError> {
        let mut timer = Timer::start();
        // --- Preprocess: transform + load. ---
        let (db, preds) = self.load_abstract(program, entries)?;
        let mut options = self.options.clone();
        let registry = self
            .profile
            .then(|| crate::profile::install_registry(&mut options));
        let mut spans = crate::profile::PhaseSpans::from_options(&options);
        let mut engine = Engine::new(db, options);
        let preprocess = parse_time + timer.lap();

        // --- Analysis: evaluate to fixpoint. ---
        // The engine's own spans nest under this phase span.
        engine.options_mut().parent_span = spans.enter("analysis");
        let query = [atom("$ga")];
        let qb = Bindings::new();
        let eval = engine.evaluate(&query, &[], &qb)?.require_complete()?;
        spans.exit();
        let analysis = timer.lap();

        // --- Collection: walk the tables. ---
        spans.enter("collection");
        let domain = self.options.domain;
        // One backend instance for the whole report: under the BDD backend
        // every predicate's formula shares (and hash-conses into) a single
        // manager, which is also the unit of memory attribution.
        let mut table_backend = TableDomain;
        let mut bdd_backend = BddDomain::new();
        let mut out = BTreeMap::new();
        for (&(name, arity), _) in preds.iter() {
            let f = gp_functor(name, arity);
            let views = eval.subgoals_of(f);
            let mut success_rows: Vec<Vec<Option<bool>>> = Vec::new();
            let mut call_patterns = Vec::new();
            for v in &views {
                call_patterns.push(tuple_to_row(&v.call_args()));
                for t in v.answer_tuples() {
                    let row = tuple_to_row(&t);
                    if !success_rows.contains(&row) {
                        success_rows.push(row);
                    }
                }
            }
            let definitely_ground = (0..arity)
                .map(|i| {
                    !success_rows.is_empty() && success_rows.iter().all(|r| r[i] == Some(true))
                })
                .collect();
            let prop = rows_to_prop(
                domain,
                &mut table_backend,
                &mut bdd_backend,
                arity,
                &success_rows,
            );
            out.insert(
                (sym_name(name), arity),
                PredGroundness {
                    name: sym_name(name),
                    arity,
                    success_rows,
                    definitely_ground,
                    prop,
                    call_patterns,
                },
            );
        }
        let domain_stats = match domain {
            DomainKind::Table => table_backend.stats(),
            DomainKind::Bdd => bdd_backend.stats(),
        };
        spans.exit();
        let collection = timer.lap();

        let timings = PhaseTimings {
            preprocess,
            analysis,
            collection,
        };
        let metrics = registry.map(|r| {
            crate::profile::finish(
                &r,
                &timings,
                engine.options().describe(),
                Some(crate::profile::engine_snapshot(&eval, domain)),
            )
        });
        Ok(GroundnessReport {
            preds: out,
            timings,
            stats: eval.stats(),
            domain,
            domain_bytes: domain_stats.bytes,
            bdd_nodes: domain_stats.nodes,
            metrics,
            parallel: eval.parallel_report().cloned(),
        })
    }
}

/// Measures the plain "compile time" baseline of the paper's tables:
/// parsing and loading the source program with no analysis.
///
/// # Errors
///
/// Returns parse or load errors.
pub fn compile_time(src: &str, mode: LoadMode) -> Result<std::time::Duration, AnalysisError> {
    let mut timer = Timer::start();
    let program = parse_program(src)?;
    let mut db = Database::new(mode);
    db.load(&program)?;
    if mode == LoadMode::Compiled {
        db.build_indexes();
    }
    Ok(timer.lap())
}

fn gp_functor(name: tablog_term::Sym, arity: usize) -> Functor {
    Functor {
        name: intern(&format!("{GP_PREFIX}{}", sym_name(name))),
        arity,
    }
}

fn build(f: Functor, args: Vec<Term>) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.into())
    }
}

fn tuple_to_row(args: &[Term]) -> Vec<Option<bool>> {
    args.iter()
        .map(|t| match t {
            Term::Atom(s) if sym_name(*s) == "true" => Some(true),
            Term::Atom(s) if sym_name(*s) == "false" => Some(false),
            _ => None,
        })
        .collect()
}

/// Builds the output-groundness formula from the table's partial success
/// rows on the selected backend and exports it as a truth table. Both
/// backends go through [`value_from_partial_rows`], so they see identical
/// inputs; the enumerative path yields exactly the bitset the
/// pre-domain-layer code computed.
fn rows_to_prop(
    domain: DomainKind,
    table_backend: &mut TableDomain,
    bdd_backend: &mut BddDomain,
    arity: usize,
    rows: &[Vec<Option<bool>>],
) -> PropTable {
    if arity > crate::prop::MAX_VARS {
        // Arity beyond truth-table capacity: report the empty formula.
        return PropTable::bottom(crate::prop::MAX_VARS);
    }
    match domain {
        DomainKind::Table => value_from_partial_rows(table_backend, arity, rows),
        DomainKind::Bdd => {
            let v = value_from_partial_rows(bdd_backend, arity, rows);
            bdd_backend.to_table(&v)
        }
    }
}

/// Transformation state for one clause.
struct Ctx {
    next_var: u32,
    body: Vec<Term>,
    iff_mode: IffMode,
    max_iff_arity: usize,
}

impl Ctx {
    fn fresh(&mut self) -> Term {
        let v = Var(self.next_var);
        self.next_var += 1;
        Term::Var(v)
    }

    /// Emits `iff(alpha, τvars(t))` — the paper's `S[t]α`.
    fn emit_iff(&mut self, alpha: Term, t: &Term) {
        let vars = t.vars();
        self.emit_iff_vars(alpha, &vars);
    }

    fn emit_iff_vars(&mut self, alpha: Term, vars: &[Var]) {
        self.max_iff_arity = self.max_iff_arity.max(vars.len());
        let mut args = vec![alpha];
        args.extend(vars.iter().map(|v| Term::Var(*v)));
        let name = match self.iff_mode {
            IffMode::Builtin => "$iff".to_owned(),
            IffMode::Facts => format!("iff${}", vars.len()),
        };
        self.body.push(structure(&name, args));
    }

    /// Constrains every variable of `t` to ground.
    fn emit_all_ground(&mut self, t: &Term) {
        for v in t.vars() {
            self.emit_iff_vars(Term::Var(v), &[]);
        }
    }
}

/// Splits `(A ; B)` disjunctions (and desugars if-then-else) so each
/// alternative becomes its own clause body.
pub(crate) fn expand_disjunctions(body: &[Term]) -> Vec<Vec<Term>> {
    let mut alts: Vec<Vec<Term>> = vec![Vec::new()];
    for goal in body {
        let choices = goal_alternatives(goal);
        let mut next = Vec::new();
        for alt in &alts {
            for c in &choices {
                let mut a = alt.clone();
                a.extend(c.clone());
                next.push(a);
            }
        }
        alts = next;
    }
    alts
}

fn goal_alternatives(goal: &Term) -> Vec<Vec<Term>> {
    if let Term::Struct(s, args) = goal {
        let name = sym_name(*s);
        if name == ";" && args.len() == 2 {
            // (C -> T ; E): groundness-wise, (C, T) or (E).
            if let Term::Struct(is, iargs) = &args[0] {
                if sym_name(*is) == "->" && iargs.len() == 2 {
                    let mut left = Vec::new();
                    for g in [&iargs[0], &iargs[1]] {
                        left.extend(flatten(g));
                    }
                    let mut out = expand_seq(&left);
                    out.extend(expand_seq(&flatten(&args[1])));
                    return out;
                }
            }
            let mut out = expand_seq(&flatten(&args[0]));
            out.extend(expand_seq(&flatten(&args[1])));
            return out;
        }
        if name == "->" && args.len() == 2 {
            let mut seq = flatten(&args[0]);
            seq.extend(flatten(&args[1]));
            return expand_seq(&seq);
        }
    }
    vec![vec![goal.clone()]]
}

fn expand_seq(goals: &[Term]) -> Vec<Vec<Term>> {
    expand_disjunctions(goals)
}

fn flatten(t: &Term) -> Vec<Term> {
    if let Term::Struct(s, args) = t {
        if sym_name(*s) == "," && args.len() == 2 {
            let mut out = flatten(&args[0]);
            out.extend(flatten(&args[1]));
            return out;
        }
    }
    vec![t.clone()]
}

/// Applies the Figure 1 transformation, returning the abstract rules and
/// the set of user predicates (with their source arities).
///
/// # Errors
///
/// Returns [`AnalysisError::Unsupported`] on clause heads that are not
/// callable.
pub fn transform_program(
    program: &Program,
    iff_mode: IffMode,
) -> Result<(Vec<Rule>, PredSet), AnalysisError> {
    let mut preds: PredSet = BTreeMap::new();
    for c in &program.clauses {
        let f = c
            .head
            .functor()
            .ok_or_else(|| AnalysisError::Unsupported(format!("clause head {}", c.head)))?;
        preds.insert((f.name, f.arity), ());
    }
    let defined: std::collections::HashSet<(tablog_term::Sym, usize)> =
        preds.keys().copied().collect();

    let mut rules = Vec::new();
    let mut max_iff = 0usize;
    for c in &program.clauses {
        let f = c.head.functor().expect("checked above");
        for alt in expand_disjunctions(&c.body) {
            if let Some(rule) =
                transform_clause(&c.head, &alt, c.nvars, f, &defined, iff_mode, &mut max_iff)?
            {
                rules.push(rule);
            }
        }
    }

    if iff_mode == IffMode::Facts {
        rules.extend(iff_fact_rules(max_iff));
    }
    Ok((rules, preds))
}

fn transform_clause(
    head: &Term,
    body: &[Term],
    nvars: usize,
    f: Functor,
    defined: &std::collections::HashSet<(tablog_term::Sym, usize)>,
    iff_mode: IffMode,
    max_iff: &mut usize,
) -> Result<Option<Rule>, AnalysisError> {
    let mut ctx = Ctx {
        next_var: (nvars + f.arity) as u32,
        body: Vec::new(),
        iff_mode,
        max_iff_arity: 0,
    };
    // Head: gp$p(X1..Xn) with iff(Xi, vars(ti)).
    let head_vars: Vec<Term> = (0..f.arity)
        .map(|i| Term::Var(Var((nvars + i) as u32)))
        .collect();
    for (i, t) in head.args().iter().enumerate() {
        ctx.emit_iff(head_vars[i].clone(), t);
    }
    // Body.
    for goal in body {
        if !transform_goal(goal, defined, &mut ctx)? {
            // Goal can never succeed: drop the whole clause.
            return Ok(None);
        }
    }
    *max_iff = (*max_iff).max(ctx.max_iff_arity);
    Ok(Some(Rule::new(
        build(gp_functor(f.name, f.arity), head_vars),
        ctx.body,
    )))
}

/// Transforms one body goal; returns `false` if the goal certainly fails.
fn transform_goal(
    goal: &Term,
    defined: &std::collections::HashSet<(tablog_term::Sym, usize)>,
    ctx: &mut Ctx,
) -> Result<bool, AnalysisError> {
    let Some(f) = goal.functor() else {
        // A variable goal: meta-call of unknown shape; no groundness info.
        return Ok(true);
    };
    let name = sym_name(f.name);
    let args = goal.args();
    match (name.as_str(), f.arity) {
        ("true", 0) | ("!", 0) => Ok(true),
        ("fail", 0) | ("false", 0) => Ok(false),
        ("=", 2) | ("==", 2) | ("=..", 2) => {
            // Groundness of the two sides coincides.
            let alpha = ctx.fresh();
            ctx.emit_iff(alpha.clone(), &args[0]);
            ctx.emit_iff(alpha, &args[1]);
            Ok(true)
        }
        ("is", 2) => {
            // The expression must be ground to evaluate; the result is then
            // ground too.
            ctx.emit_all_ground(&args[1]);
            ctx.emit_all_ground(&args[0]);
            Ok(true)
        }
        ("<", 2) | (">", 2) | ("=<", 2) | (">=", 2) | ("=:=", 2) | ("=\\=", 2) => {
            ctx.emit_all_ground(&args[0]);
            ctx.emit_all_ground(&args[1]);
            Ok(true)
        }
        ("atom", 1) | ("atomic", 1) | ("number", 1) | ("integer", 1) | ("ground", 1) => {
            ctx.emit_all_ground(&args[0]);
            Ok(true)
        }
        ("\\+", 1)
        | ("not", 1)
        | ("var", 1)
        | ("nonvar", 1)
        | ("compound", 1)
        | ("\\=", 2)
        | ("\\==", 2)
        | ("@<", 2)
        | ("@>", 2)
        | ("@=<", 2)
        | ("@>=", 2) => {
            // No bindings exported (or no groundness information): drop.
            Ok(true)
        }
        ("functor", 3) => {
            ctx.emit_all_ground(&args[1]);
            ctx.emit_all_ground(&args[2]);
            Ok(true)
        }
        ("arg", 3) => {
            ctx.emit_all_ground(&args[0]);
            Ok(true)
        }
        ("call", 1) => {
            if args[0].functor().is_some() && !args[0].is_var() {
                transform_goal(&args[0], defined, ctx)
            } else {
                Ok(true)
            }
        }
        _ => {
            if defined.contains(&(f.name, f.arity)) {
                // User predicate: fresh α per argument, then gp$q(α…).
                let alphas: Vec<Term> = (0..f.arity).map(|_| ctx.fresh()).collect();
                for (alpha, t) in alphas.iter().zip(args) {
                    ctx.emit_iff(alpha.clone(), t);
                }
                ctx.body.push(build(gp_functor(f.name, f.arity), alphas));
                Ok(true)
            } else {
                // Unknown predicate: assume it may succeed without
                // grounding anything (sound over-approximation).
                Ok(true)
            }
        }
    }
}

/// Generates the `iff$k` fact predicates up to arity `max_k`.
fn iff_fact_rules(max_k: usize) -> Vec<Rule> {
    let mut out = Vec::new();
    for k in 0..=max_k {
        let name = format!("iff${k}");
        for mask in 0u64..(1u64 << k) {
            let ys: Vec<bool> = (0..k).map(|i| mask & (1 << i) != 0).collect();
            let x = ys.iter().all(|&b| b);
            let mut args = vec![atom(if x { "true" } else { "false" })];
            args.extend(ys.iter().map(|&b| atom(if b { "true" } else { "false" })));
            out.push(Rule::new(structure(&name, args), Vec::new()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPEND: &str = "
        app([], Ys, Ys).
        app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    ";

    #[test]
    fn figure2_append_success_set() {
        let report = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        let g = report.output_groundness("app", 3).unwrap();
        // The output groundness of append is X ∧ Y ⇔ Z (paper, Section 3.1).
        let expect = PropTable::top(3).constrain_iff(2, &[0, 1]);
        assert_eq!(g.prop, expect);
        assert_eq!(g.definitely_ground, vec![false, false, false]);
    }

    #[test]
    fn facts_mode_matches_builtin_mode() {
        let builtin = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        let mut a = GroundnessAnalyzer::new();
        a.iff_mode = IffMode::Facts;
        let facts = a.analyze_source(APPEND).unwrap();
        let g1 = builtin.output_groundness("app", 3).unwrap();
        let g2 = facts.output_groundness("app", 3).unwrap();
        assert_eq!(g1.prop, g2.prop);
    }

    #[test]
    fn compiled_mode_matches_dynamic() {
        let mut a = GroundnessAnalyzer::new();
        a.load_mode = LoadMode::Compiled;
        let compiled = a.analyze_source(APPEND).unwrap();
        let dynamic = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        assert_eq!(
            compiled.output_groundness("app", 3).unwrap().prop,
            dynamic.output_groundness("app", 3).unwrap().prop
        );
    }

    #[test]
    fn ground_fact_predicates() {
        let src = "p(a). p(f(b)). q(X) :- p(X).";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let p = report.output_groundness("p", 1).unwrap();
        assert_eq!(p.definitely_ground, vec![true]);
        let q = report.output_groundness("q", 1).unwrap();
        assert_eq!(q.definitely_ground, vec![true]);
    }

    #[test]
    fn arithmetic_grounds_results() {
        let src = "inc(X, Y) :- Y is X + 1.";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("inc", 2).unwrap();
        assert_eq!(g.definitely_ground, vec![true, true]);
    }

    #[test]
    fn unification_links_groundness() {
        let src = "same(X, Y) :- X = Y.";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("same", 2).unwrap();
        // X ⇔ Y.
        let expect = PropTable::top(2).constrain_iff(0, &[1]);
        assert_eq!(g.prop, expect);
    }

    #[test]
    fn disjunction_union_of_branches() {
        let src = "p(X, Y) :- (X = a ; Y = b).";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("p", 2).unwrap();
        assert_eq!(g.definitely_ground, vec![false, false]);
        // Union of the branches: X ∨ Y — three rows.
        assert_eq!(g.prop.count(), 3);
    }

    #[test]
    fn failing_clause_is_dropped() {
        let src = "p(X) :- fail. p(a).";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("p", 1).unwrap();
        assert_eq!(g.definitely_ground, vec![true]);
    }

    #[test]
    fn cut_and_negation_are_sound() {
        let src = "p(X) :- q(X), !, \\+ r(X). q(a). r(b).";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("p", 1).unwrap();
        assert_eq!(g.definitely_ground, vec![true]);
    }

    #[test]
    fn entry_points_record_input_groundness() {
        let src = "
            qs([], []).
            qs([X|Xs], S) :- qs(Xs, S0), ins(X, S0, S).
            ins(X, [], [X]).
            ins(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
            ins(X, [Y|Ys], [Y|Zs]) :- X > Y, ins(X, Ys, Zs).
        ";
        let program = parse_program(src).unwrap();
        let entry = EntryPoint::parse("qs(g, f)").unwrap();
        let report = GroundnessAnalyzer::new()
            .analyze_with_entries(&program, &[entry])
            .unwrap();
        let ins = report.output_groundness("ins", 3).unwrap();
        // Called from qs with ground first list: ins sees ground args 1, 2.
        assert!(!ins.call_patterns.is_empty());
        for call in &ins.call_patterns {
            assert_eq!(call[0], Some(true), "{call:?}");
            assert_eq!(call[1], Some(true), "{call:?}");
        }
        let qs = report.output_groundness("qs", 2).unwrap();
        assert_eq!(qs.definitely_ground, vec![true, true]);
    }

    #[test]
    fn if_then_else_branches() {
        let src = "m(X, Y) :- (X = a -> Y = b ; Y = c).";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        let g = report.output_groundness("m", 2).unwrap();
        // Both branches ground Y; only the then-branch grounds X.
        assert_eq!(g.definitely_ground, vec![false, true]);
    }

    #[test]
    fn mutual_recursion() {
        let src = "
            even(0).
            even(s(X)) :- odd(X).
            odd(s(X)) :- even(X).
        ";
        let report = GroundnessAnalyzer::new().analyze_source(src).unwrap();
        assert_eq!(
            report
                .output_groundness("even", 1)
                .unwrap()
                .definitely_ground,
            vec![true]
        );
        assert_eq!(
            report
                .output_groundness("odd", 1)
                .unwrap()
                .definitely_ground,
            vec![true]
        );
    }

    #[test]
    fn bdd_backend_matches_table_backend() {
        let table = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        let mut a = GroundnessAnalyzer::new();
        a.options.domain = DomainKind::Bdd;
        let bdd = a.analyze_source(APPEND).unwrap();
        assert_eq!(table.domain, DomainKind::Table);
        assert_eq!(bdd.domain, DomainKind::Bdd);
        let gt = table.output_groundness("app", 3).unwrap();
        let gb = bdd.output_groundness("app", 3).unwrap();
        assert_eq!(gt.prop, gb.prop);
        assert_eq!(gt.definitely_ground, gb.definitely_ground);
        // The table backend charges nothing beyond the engine's tables;
        // the BDD backend accounts its manager.
        assert_eq!(table.domain_bytes, 0);
        assert_eq!(table.bdd_nodes, 0);
        assert!(bdd.bdd_nodes > 0);
        assert!(bdd.table_bytes() > bdd.stats.table_bytes);
    }

    #[test]
    fn timings_and_table_space_reported() {
        let report = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        assert!(report.table_bytes() > 0);
        assert!(report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn entry_parse_rejects_bad_spec() {
        assert!(EntryPoint::parse("qs(g, x)").is_err());
    }

    #[test]
    fn compile_time_measures_load() {
        let d = compile_time(APPEND, LoadMode::Dynamic).unwrap();
        assert!(d > std::time::Duration::ZERO);
    }
}
