//! Phase timing, mirroring the paper's performance metrics.
//!
//! Section 4 of the paper breaks total analysis time into *preprocessing*
//! (transform + load), *analysis* (fixpoint evaluation), and *collection*
//! (extracting results from the tables), and reports the total against the
//! plain compilation time of the same program. Every analyzer in this crate
//! reports a [`PhaseTimings`].

use std::time::{Duration, Instant};

/// Wall-clock durations of the three analysis phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Reading, transforming and loading the program.
    pub preprocess: Duration,
    /// Evaluating the abstract program to fixpoint.
    pub analysis: Duration,
    /// Extracting and combining results from the tables.
    pub collection: Duration,
}

impl PhaseTimings {
    /// Total analysis time (the paper's "Total" column).
    pub fn total(&self) -> Duration {
        self.preprocess + self.analysis + self.collection
    }
}

/// A small stopwatch for accumulating phase durations.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts a timer.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Elapsed time since start or the last lap.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.0;
        self.0 = now;
        d
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let t = PhaseTimings {
            preprocess: Duration::from_millis(3),
            analysis: Duration::from_millis(5),
            collection: Duration::from_millis(2),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn timer_laps_are_monotone() {
        let mut t = Timer::start();
        let a = t.lap();
        let b = t.lap();
        assert!(a >= Duration::ZERO && b >= Duration::ZERO);
    }
}
