//! Analyzer-level answer provenance: justification trees for analysis
//! results.
//!
//! Each engine-backed analyzer exposes an `explain(goal)` entry point that
//! rebuilds its abstract program, maps the source-level goal onto the
//! abstract predicate space (`gp$p`, `ak$p`, `sp$f` — names a user would
//! have to quote to write directly, so the goal term is constructed rather
//! than re-parsed), and evaluates it with provenance recording forced on.
//! The result pairs the source goal with the abstract goal actually queried
//! and the engine's [`Explanation`]: one justification tree per matching
//! table answer, whose leaves are program facts or builtin-supported
//! clauses of the abstract program.

use crate::error::AnalysisError;
use tablog_engine::{Engine, Explanation};
use tablog_term::{Bindings, Term};
use tablog_trace::json::escape;

/// An explanation of one analysis result: the source-level goal, the
/// abstract-program goal it was mapped to, and the justification trees of
/// every matching abstract answer.
#[derive(Clone, Debug)]
pub struct AnalysisExplanation {
    /// The goal as the user wrote it (source-level predicate names).
    pub goal: String,
    /// The abstract goal actually queried (`gp$p(…)`, `ak$p(…)`, …).
    pub abstract_goal: String,
    /// The engine's justification trees for the abstract goal.
    pub explanation: Explanation,
}

impl AnalysisExplanation {
    /// `true` if the abstract goal had no matching answers.
    pub fn is_empty(&self) -> bool {
        self.explanation.is_empty()
    }

    /// Renders a header (source goal, abstract goal) followed by the
    /// justification trees.
    pub fn render_text(&self) -> String {
        format!(
            "goal: {}\nabstract: {}\n{}",
            self.goal,
            self.abstract_goal,
            self.explanation.render_text()
        )
    }

    /// Renders the explanation as one JSON object
    /// (`{"goal": …, "abstract_goal": …, "explanation": {…}}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"goal\":\"{}\",\"abstract_goal\":\"{}\",\"explanation\":{}}}",
            escape(&self.goal),
            escape(&self.abstract_goal),
            self.explanation.to_json()
        )
    }
}

/// Shared tail of every analyzer `explain`: renders the abstract goal,
/// runs [`Engine::explain_goal`], and wraps the result.
pub(crate) fn explain_abstract(
    engine: &Engine,
    goal_text: &str,
    abstract_term: &Term,
    bindings: &Bindings,
    max_depth: usize,
) -> Result<AnalysisExplanation, AnalysisError> {
    let abstract_goal = tablog_syntax::term_to_string(abstract_term);
    let explanation = engine.explain_goal(abstract_term, bindings, &abstract_goal, max_depth)?;
    Ok(AnalysisExplanation {
        goal: goal_text.to_owned(),
        abstract_goal,
        explanation,
    })
}

#[cfg(test)]
mod tests {
    use crate::depthk::DepthKAnalyzer;
    use crate::groundness::GroundnessAnalyzer;
    use crate::strictness::StrictnessAnalyzer;
    use tablog_engine::JustStatus;
    use tablog_syntax::parse_program;

    const APPEND: &str = "
        app([], Ys, Ys).
        app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    ";

    #[test]
    fn groundness_explains_ground_answer() {
        let program = parse_program(APPEND).unwrap();
        let ex = GroundnessAnalyzer::new()
            .explain(&program, "app(g, g, Z)", 32)
            .unwrap();
        assert_eq!(ex.goal, "app(g, g, Z)");
        assert!(ex.abstract_goal.starts_with("'gp$app'("));
        assert!(!ex.is_empty());
        for t in &ex.explanation.trees {
            assert!(t.answer.starts_with("'gp$app'("));
            t.walk(&mut |n| {
                if n.children.is_empty() {
                    assert!(
                        n.status.is_grounded_leaf() || n.status == JustStatus::Cycle,
                        "leaf {} has status {:?}",
                        n.answer,
                        n.status
                    );
                }
            });
        }
    }

    #[test]
    fn groundness_rejects_bad_goal_argument() {
        let program = parse_program(APPEND).unwrap();
        let e = GroundnessAnalyzer::new().explain(&program, "app(g, q, Z)", 32);
        assert!(e.is_err());
    }

    #[test]
    fn depthk_explains_truncated_answers() {
        let src = "
            nat(0).
            nat(s(X)) :- nat(X).
        ";
        let program = parse_program(src).unwrap();
        let ex = DepthKAnalyzer::new(2)
            .explain(&program, "nat(X)", 32)
            .unwrap();
        assert!(ex.abstract_goal.starts_with("'ak$nat'("));
        assert!(!ex.is_empty());
        // The recursive case consumes a table answer: some tree is Derived.
        assert!(ex
            .explanation
            .trees
            .iter()
            .any(|t| t.status == JustStatus::Derived));
    }

    #[test]
    fn strictness_explains_demand_propagation() {
        let src = "
            ap(nil, ys) = ys;
            ap(x : xs, ys) = x : ap(xs, ys);
        ";
        let prog = tablog_funlang::parse_fun_program(src).unwrap();
        let ex = StrictnessAnalyzer::new()
            .explain(&prog, "ap(e)", 32)
            .unwrap();
        assert!(ex.abstract_goal.starts_with("'sp$ap'(e,"));
        assert!(!ex.is_empty());
        // Figure 4: under e-demand the only answer is (e, e).
        assert_eq!(ex.explanation.trees.len(), 1);
    }

    #[test]
    fn strictness_rejects_unknown_function_and_bad_demand() {
        let src = "k(x, y) = x;";
        let prog = tablog_funlang::parse_fun_program(src).unwrap();
        let an = StrictnessAnalyzer::new();
        assert!(an.explain(&prog, "missing(e)", 32).is_err());
        assert!(an.explain(&prog, "k(q)", 32).is_err());
    }

    #[test]
    fn explanation_json_embeds_engine_explanation() {
        let program = parse_program(APPEND).unwrap();
        let ex = GroundnessAnalyzer::new()
            .explain(&program, "app(g, g, Z)", 32)
            .unwrap();
        let doc = tablog_trace::json::parse(&ex.to_json()).unwrap();
        assert_eq!(doc.get("goal").unwrap().as_str(), Some("app(g, g, Z)"));
        assert!(doc
            .get("explanation")
            .unwrap()
            .get("justifications")
            .unwrap()
            .as_arr()
            .is_some());
    }
}
