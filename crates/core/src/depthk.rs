//! Depth-k groundness analysis with a non-enumerative, constraint-style
//! representation — the paper's Section 5 (Table 4).
//!
//! The abstract domain is the set of terms of depth at most `k` built from
//! the program's function symbols, a special constant γ (written `$g`)
//! denoting *all ground terms*, and variables. Abstract unification —
//! γ unifies with any term it can ground, and variable binding performs the
//! occur check — differs from the engine's syntactic unification, so it is
//! implemented at the meta level (the engine's `$absunify/2` builtin),
//! exactly as the paper implements it above XSB's native unification.
//!
//! Termination on the infinite Herbrand base comes from the engine's
//! Section-6.1 hooks: calls and answers are widened by depth-k truncation
//! before entering the tables.

use crate::error::AnalysisError;
use crate::groundness::{expand_disjunctions, EntryPoint};
use crate::pipeline::{PhaseTimings, Timer};
use std::collections::BTreeMap;
use std::sync::Arc;
use tablog_engine::{Database, Engine, EngineOptions, LoadMode, TableStats, GAMMA};
use tablog_magic::Rule;
use tablog_syntax::{parse_program, Program};
use tablog_term::{
    atom, intern, structure, sym_name, Bindings, CanonicalTerm, Functor, Term, TermArena, Var,
};
use tablog_trace::MetricsReport;

/// Name prefix of depth-k abstract predicates.
pub const AK_PREFIX: &str = "ak$";

/// Depth-k results for one predicate.
#[derive(Clone, Debug)]
pub struct PredDepthK {
    /// Source predicate name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// Abstract success set: answers as depth-k terms (γ = `$g`).
    pub answers: Vec<Vec<Term>>,
    /// Per-argument verdict: ground in every answer (γ counts as ground).
    pub definitely_ground: Vec<bool>,
    /// Abstract call patterns from the call table.
    pub call_patterns: Vec<Vec<Term>>,
}

/// The complete result of a depth-k analysis run.
#[derive(Clone, Debug)]
pub struct DepthKReport {
    preds: BTreeMap<(String, usize), PredDepthK>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Engine statistics, including table space.
    pub stats: TableStats,
    /// Per-predicate engine metrics; present iff the analyzer's
    /// [`profile`](DepthKAnalyzer::profile) flag was set. Includes the
    /// `calls_abstracted` / `answers_widened` counts from the depth-k
    /// truncation hooks.
    pub metrics: Option<MetricsReport>,
}

impl DepthKReport {
    /// Result for one predicate.
    pub fn result(&self, name: &str, arity: usize) -> Option<&PredDepthK> {
        self.preds.get(&(name.to_owned(), arity))
    }

    /// All analyzed predicates, sorted by name.
    pub fn predicates(&self) -> impl Iterator<Item = &PredDepthK> {
        self.preds.values()
    }

    /// Total table space in bytes.
    pub fn table_bytes(&self) -> usize {
        self.stats.table_bytes
    }
}

/// The depth-k analyzer.
#[derive(Clone, Debug)]
pub struct DepthKAnalyzer {
    /// Truncation depth (the paper's `k`).
    pub k: usize,
    /// Clause store mode.
    pub load_mode: LoadMode,
    /// Base engine options; the analyzer installs its own table hooks.
    pub options: EngineOptions,
    /// Collect per-predicate engine metrics and phase timings into
    /// [`DepthKReport::metrics`].
    pub profile: bool,
}

impl Default for DepthKAnalyzer {
    fn default() -> Self {
        DepthKAnalyzer {
            k: 2,
            load_mode: LoadMode::Dynamic,
            options: EngineOptions::default(),
            profile: false,
        }
    }
}

impl DepthKAnalyzer {
    /// An analyzer with the given truncation depth.
    pub fn new(k: usize) -> Self {
        DepthKAnalyzer {
            k,
            ..DepthKAnalyzer::default()
        }
    }

    /// Parses and analyzes `src` with fully open calls.
    ///
    /// # Errors
    ///
    /// Returns parse, transformation, or engine errors.
    pub fn analyze_source(&self, src: &str) -> Result<DepthKReport, AnalysisError> {
        let mut timer = Timer::start();
        let program = parse_program(src)?;
        self.analyze(&program, &[], timer.lap())
    }

    /// Analyzes a parsed program with fully open calls.
    ///
    /// # Errors
    ///
    /// Returns transformation or engine errors.
    pub fn analyze_program(&self, program: &Program) -> Result<DepthKReport, AnalysisError> {
        self.analyze(program, &[], std::time::Duration::ZERO)
    }

    /// Goal-directed analysis: entry arguments marked ground become γ.
    ///
    /// # Errors
    ///
    /// Returns transformation or engine errors.
    pub fn analyze_with_entries(
        &self,
        program: &Program,
        entries: &[EntryPoint],
    ) -> Result<DepthKReport, AnalysisError> {
        self.analyze(program, entries, std::time::Duration::ZERO)
    }

    /// Builds the abstract database: transformed rules, tabling
    /// declarations, and the `$dk` driver clauses. Shared by
    /// [`analyze`](DepthKAnalyzer::analyze_program) and
    /// [`explain`](DepthKAnalyzer::explain).
    fn load_abstract(
        &self,
        program: &Program,
        entries: &[EntryPoint],
    ) -> Result<(Database, crate::groundness::PredSet), AnalysisError> {
        let (rules, preds) = transform_depthk(program)?;
        let mut db = Database::new(self.load_mode);
        for r in &rules {
            db.assert_clause(r.head.clone(), r.body.clone())?;
        }
        for &(name, arity) in preds.keys() {
            db.set_tabled(ak_functor(name, arity), true);
        }
        let mut b = Bindings::new();
        if entries.is_empty() {
            for &(name, arity) in preds.keys() {
                let args: Vec<Term> = (0..arity).map(|_| Term::Var(b.fresh_var())).collect();
                db.assert_clause(atom("$dk"), vec![build(ak_functor(name, arity), args)])?;
            }
        } else {
            for e in entries {
                let args: Vec<Term> = e
                    .ground_args
                    .iter()
                    .map(|&g| {
                        if g {
                            atom(GAMMA)
                        } else {
                            Term::Var(b.fresh_var())
                        }
                    })
                    .collect();
                db.assert_clause(
                    atom("$dk"),
                    vec![build(
                        ak_functor(intern(&e.name), e.ground_args.len()),
                        args,
                    )],
                )?;
            }
        }
        if self.load_mode == LoadMode::Compiled {
            db.build_indexes();
        }
        Ok((db, preds))
    }

    /// The analyzer's engine options with the depth-k truncation hooks
    /// installed as call abstraction and answer widening.
    fn hooked_options(&self) -> EngineOptions {
        let mut opts = self.options.clone();
        let k = self.k;
        let trunc: tablog_engine::TermHook =
            Arc::new(move |a: &mut TermArena, c: &CanonicalTerm| truncate_tuple(a, c, k));
        opts.call_abstraction = Some(trunc.clone());
        opts.answer_widening = Some(trunc);
        opts
    }

    /// Explains one depth-k answer: maps `goal` — a source-level call whose
    /// arguments are depth-k terms (write `g` for γ, the all-ground-terms
    /// constant) or variables — onto the abstract predicate `ak$p` and
    /// returns the justification trees of every matching abstract answer,
    /// evaluated with the truncation hooks in place.
    ///
    /// # Errors
    ///
    /// Returns parse, transformation, or engine errors.
    pub fn explain(
        &self,
        program: &Program,
        goal: &str,
        max_depth: usize,
    ) -> Result<crate::explain::AnalysisExplanation, AnalysisError> {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b)
            .map_err(|e| AnalysisError::Parse(e.to_string()))?;
        let f = t
            .functor()
            .ok_or_else(|| AnalysisError::Parse(format!("bad goal {goal}")))?;
        let args: Vec<Term> = t
            .args()
            .iter()
            .map(|a| match a {
                Term::Atom(s) if sym_name(*s) == "g" => atom(GAMMA),
                other => other.clone(),
            })
            .collect();
        let (db, _) = self.load_abstract(program, &[])?;
        let engine = Engine::new(db, self.hooked_options());
        let abstract_term = build(ak_functor(f.name, f.arity), args);
        crate::explain::explain_abstract(&engine, goal, &abstract_term, &b, max_depth)
    }

    fn analyze(
        &self,
        program: &Program,
        entries: &[EntryPoint],
        parse_time: std::time::Duration,
    ) -> Result<DepthKReport, AnalysisError> {
        let mut timer = Timer::start();
        // --- Preprocess. ---
        let (db, preds) = self.load_abstract(program, entries)?;
        let mut opts = self.hooked_options();
        let registry = self
            .profile
            .then(|| crate::profile::install_registry(&mut opts));
        let mut spans = crate::profile::PhaseSpans::from_options(&opts);
        let mut engine = Engine::new(db, opts);
        let preprocess = parse_time + timer.lap();

        // --- Analysis. ---
        engine.options_mut().parent_span = spans.enter("analysis");
        let qb = Bindings::new();
        let eval = engine
            .evaluate(&[atom("$dk")], &[], &qb)?
            .require_complete()?;
        spans.exit();
        let analysis = timer.lap();

        // --- Collection. ---
        spans.enter("collection");
        let mut out = BTreeMap::new();
        for &(name, arity) in preds.keys() {
            let f = ak_functor(name, arity);
            let views = eval.subgoals_of(f);
            let mut answers: Vec<Vec<Term>> = Vec::new();
            let mut call_patterns = Vec::new();
            for v in &views {
                call_patterns.push(v.call_args().to_vec());
                for t in v.answer_tuples() {
                    let row = t.to_vec();
                    if !answers.contains(&row) {
                        answers.push(row);
                    }
                }
            }
            let definitely_ground = (0..arity)
                .map(|i| !answers.is_empty() && answers.iter().all(|r| r[i].is_ground()))
                .collect();
            out.insert(
                (sym_name(name), arity),
                PredDepthK {
                    name: sym_name(name),
                    arity,
                    answers,
                    definitely_ground,
                    call_patterns,
                },
            );
        }
        spans.exit();
        let collection = timer.lap();

        let timings = PhaseTimings {
            preprocess,
            analysis,
            collection,
        };
        let metrics = registry.map(|r| {
            crate::profile::finish(
                &r,
                &timings,
                engine.options().describe(),
                Some(crate::profile::engine_snapshot(&eval, self.options.domain)),
            )
        });
        Ok(DepthKReport {
            preds: out,
            timings,
            stats: eval.stats(),
            metrics,
        })
    }
}

fn ak_functor(name: tablog_term::Sym, arity: usize) -> Functor {
    Functor {
        name: intern(&format!("{AK_PREFIX}{}", sym_name(name))),
        arity,
    }
}

fn build(f: Functor, args: Vec<Term>) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.into())
    }
}

/// Truncates every term of a canonical tuple at depth `k`: subterms below
/// the cut become γ if ground, a fresh variable otherwise. Works entirely
/// inside the calling engine's session arena.
fn truncate_tuple(arena: &mut TermArena, c: &CanonicalTerm, k: usize) -> CanonicalTerm {
    let mut b = Bindings::new();
    let terms = arena.instantiate(c, &mut b);
    let truncated: Vec<Term> = terms.iter().map(|t| truncate(t, k, &mut b)).collect();
    arena.canonicalize(&b, &truncated)
}

fn truncate(t: &Term, k: usize, b: &mut Bindings) -> Term {
    match t {
        Term::Struct(s, args) => {
            if k == 0 {
                if t.is_ground() {
                    atom(GAMMA)
                } else {
                    Term::Var(b.fresh_var())
                }
            } else {
                let new: Vec<Term> = args.iter().map(|a| truncate(a, k - 1, b)).collect();
                Term::Struct(*s, new.into())
            }
        }
        other => other.clone(),
    }
}

/// Transforms a program into its depth-k abstract version: heads become
/// all-variable with explicit `$absunify` goals, and builtins are replaced
/// by their groundness effect.
///
/// # Errors
///
/// Returns [`AnalysisError::Unsupported`] on malformed clause heads.
pub fn transform_depthk(
    program: &Program,
) -> Result<(Vec<Rule>, crate::groundness::PredSet), AnalysisError> {
    let mut preds: crate::groundness::PredSet = BTreeMap::new();
    for c in &program.clauses {
        let f = c
            .head
            .functor()
            .ok_or_else(|| AnalysisError::Unsupported(format!("clause head {}", c.head)))?;
        preds.insert((f.name, f.arity), ());
    }
    let defined: std::collections::HashSet<(tablog_term::Sym, usize)> =
        preds.keys().copied().collect();
    let mut rules = Vec::new();
    for c in &program.clauses {
        let f = c.head.functor().expect("checked above");
        for alt in expand_disjunctions(&c.body) {
            let mut next_var = (c.nvars + f.arity) as u32;
            let head_vars: Vec<Term> = (0..f.arity)
                .map(|i| Term::Var(Var((c.nvars + i) as u32)))
                .collect();
            let mut body = Vec::new();
            for (hv, t) in head_vars.iter().zip(c.head.args()) {
                body.push(structure("$absunify", vec![hv.clone(), t.clone()]));
            }
            let mut dead = false;
            for goal in &alt {
                if !abstract_goal(goal, &defined, &mut body, &mut next_var) {
                    dead = true;
                    break;
                }
            }
            if !dead {
                rules.push(Rule::new(
                    build(ak_functor(f.name, f.arity), head_vars),
                    body,
                ));
            }
        }
    }
    Ok((rules, preds))
}

/// Appends the abstract goals for one body literal; `false` means the
/// literal certainly fails.
fn abstract_goal(
    goal: &Term,
    defined: &std::collections::HashSet<(tablog_term::Sym, usize)>,
    out: &mut Vec<Term>,
    _next_var: &mut u32,
) -> bool {
    let Some(f) = goal.functor() else {
        return true; // variable meta-call: no information
    };
    let name = sym_name(f.name);
    let args = goal.args();
    match (name.as_str(), f.arity) {
        ("true", 0) | ("!", 0) => true,
        ("fail", 0) | ("false", 0) => false,
        ("=", 2) => {
            out.push(structure(
                "$absunify",
                vec![args[0].clone(), args[1].clone()],
            ));
            true
        }
        ("is", 2) => {
            out.push(structure("$absground", vec![args[1].clone()]));
            out.push(structure("$absground", vec![args[0].clone()]));
            true
        }
        ("<", 2) | (">", 2) | ("=<", 2) | (">=", 2) | ("=:=", 2) | ("=\\=", 2) => {
            out.push(structure("$absground", vec![args[0].clone()]));
            out.push(structure("$absground", vec![args[1].clone()]));
            true
        }
        ("atom", 1) | ("atomic", 1) | ("number", 1) | ("integer", 1) | ("ground", 1) => {
            out.push(structure("$absground", vec![args[0].clone()]));
            true
        }
        ("\\+", 1)
        | ("not", 1)
        | ("var", 1)
        | ("nonvar", 1)
        | ("compound", 1)
        | ("\\=", 2)
        | ("==", 2)
        | ("\\==", 2)
        | ("@<", 2)
        | ("@>", 2)
        | ("@=<", 2)
        | ("@>=", 2)
        | ("functor", 3)
        | ("arg", 3)
        | ("=..", 2) => true,
        ("call", 1) => {
            if args[0].functor().is_some() && !args[0].is_var() {
                abstract_goal(&args[0], defined, out, _next_var)
            } else {
                true
            }
        }
        _ => {
            if defined.contains(&(f.name, f.arity)) {
                out.push(build(ak_functor(f.name, f.arity), args.to_vec()));
            }
            // Unknown predicates: assume success, no bindings.
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_caps_term_growth() {
        let src = "
            nat(0).
            nat(s(X)) :- nat(X).
        ";
        let report = DepthKAnalyzer::new(2).analyze_source(src).unwrap();
        let nat = report.result("nat", 1).unwrap();
        // Fixpoint at depth 2: 0, s(0), s(s(0)), s(s(s(γ)))-truncated…
        assert!(nat.answers.len() <= 5, "{:?}", nat.answers);
        assert_eq!(nat.definitely_ground, vec![true]);
    }

    #[test]
    fn append_depthk_groundness() {
        let src = "
            app([], Ys, Ys).
            app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
        ";
        let report = DepthKAnalyzer::new(2).analyze_source(src).unwrap();
        let app = report.result("app", 3).unwrap();
        assert_eq!(app.definitely_ground, vec![false, false, false]);
        assert!(!app.answers.is_empty());
    }

    #[test]
    fn ground_facts_stay_precise_within_depth() {
        let src = "color(red). color(green). shade(X) :- color(X).";
        let report = DepthKAnalyzer::new(2).analyze_source(src).unwrap();
        let c = report.result("color", 1).unwrap();
        // Depth-1 constants survive truncation exactly.
        assert_eq!(c.answers.len(), 2);
        assert_eq!(c.definitely_ground, vec![true]);
        assert_eq!(
            report.result("shade", 1).unwrap().definitely_ground,
            vec![true]
        );
    }

    #[test]
    fn structure_beyond_k_becomes_gamma() {
        let src = "deep(f(g(h(a)))).";
        let report = DepthKAnalyzer::new(1).analyze_source(src).unwrap();
        let d = report.result("deep", 1).unwrap();
        assert_eq!(d.answers.len(), 1);
        let t = &d.answers[0][0];
        // f(γ) — the inner structure was ground, so it widens to γ.
        assert_eq!(tablog_syntax::term_to_string(t), "f('$g')");
        assert_eq!(d.definitely_ground, vec![true]);
    }

    #[test]
    fn arithmetic_grounds_through_gamma() {
        let src = "inc(X, Y) :- Y is X + 1.";
        let report = DepthKAnalyzer::new(2).analyze_source(src).unwrap();
        let g = report.result("inc", 2).unwrap();
        assert_eq!(g.definitely_ground, vec![true, true]);
    }

    #[test]
    fn entries_seed_gamma_arguments() {
        let src = "
            qs([], []).
            qs([X|Xs], S) :- qs(Xs, S0), ins(X, S0, S).
            ins(X, [], [X]).
            ins(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
            ins(X, [Y|Ys], [Y|Zs]) :- X > Y, ins(X, Ys, Zs).
        ";
        let program = parse_program(src).unwrap();
        let entries = [EntryPoint::parse("qs(g, f)").unwrap()];
        let report = DepthKAnalyzer::new(2)
            .analyze_with_entries(&program, &entries)
            .unwrap();
        let qs = report.result("qs", 2).unwrap();
        assert_eq!(qs.definitely_ground, vec![true, true]);
    }

    #[test]
    fn depthk_agrees_with_prop_on_definite_groundness_direction() {
        // Both analyses over-approximate; on this program they agree.
        let src = "p(a). q(X) :- p(X). r(X, Y) :- q(X), Y = f(X).";
        let dk = DepthKAnalyzer::new(2).analyze_source(src).unwrap();
        let prop = crate::groundness::GroundnessAnalyzer::new()
            .analyze_source(src)
            .unwrap();
        for (name, arity) in [("p", 1), ("q", 1), ("r", 2)] {
            assert_eq!(
                dk.result(name, arity).unwrap().definitely_ground,
                prop.output_groundness(name, arity)
                    .unwrap()
                    .definitely_ground,
                "{name}/{arity}"
            );
        }
    }

    #[test]
    fn timings_reported() {
        let report = DepthKAnalyzer::new(2).analyze_source("p(a).").unwrap();
        assert!(report.table_bytes() > 0);
    }
}
