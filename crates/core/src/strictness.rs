//! Strictness analysis of lazy functional programs by demand propagation —
//! the paper's Figure 3 transformation (after Sekar & Ramakrishnan).
//!
//! For each function `f/n` the translation derives a predicate
//! `sp$f(D, X1…Xn)`: when the demand on an application of `f` is `D`, the
//! answers' instantiations of `Xi` are the demands placed on the arguments.
//! Demand extents are `e` (normal form), `d` (head normal form) and `n`
//! (null); a **variable left free in an answer is a null demand** — the
//! relational encoding of "no constraint".
//!
//! Demand flows *top-down* through right-hand-side expressions (the
//! `sp$c`/`sp$f` literals come first) and *bottom-up* through left-hand-side
//! patterns (the `pm$c` literals come last) — the literal order the paper
//! singles out as the key efficiency lever of the formulation.
//!
//! Verdicts: `f` is strict in argument `i` under demand `D` iff no answer
//! of `sp$f(D, …)` leaves `Xi` free or `n`: evaluation via every equation
//! and branch places at least a head-normal-form demand on the argument.

use crate::error::AnalysisError;
use crate::pipeline::{PhaseTimings, Timer};
use std::collections::BTreeMap;
use tablog_engine::{Database, Engine, EngineOptions, LoadMode, TableStats};
use tablog_funlang::{parse_fun_program, Equation, Expr, FunProgram, Pattern};
use tablog_magic::Rule;
use tablog_term::{atom, intern, structure, sym_name, Functor, Term, Var};
use tablog_trace::MetricsReport;

/// A demand extent, ordered `N < D < E`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Demand {
    /// Null demand: the argument need not be evaluated.
    N,
    /// Head-normal-form demand.
    D,
    /// (Full) normal-form demand.
    E,
}

impl Demand {
    /// Meet (greatest lower bound) of two demands.
    pub fn meet(self, other: Demand) -> Demand {
        self.min(other)
    }

    /// The demand constant's name in the abstract program.
    pub fn atom_name(self) -> &'static str {
        match self {
            Demand::E => "e",
            Demand::D => "d",
            Demand::N => "n",
        }
    }
}

/// Strictness verdicts for one function.
#[derive(Clone, Debug)]
pub struct FunStrictness {
    /// Function name.
    pub name: String,
    /// Function arity.
    pub arity: usize,
    /// Per-argument demand guaranteed under an `e`-demand on the result.
    pub under_e: Vec<Demand>,
    /// Per-argument demand guaranteed under a `d`-demand on the result.
    pub under_d: Vec<Demand>,
}

impl FunStrictness {
    /// Classical strictness: under full demand, is argument `i` needed?
    pub fn is_strict(&self, i: usize) -> bool {
        self.under_e.get(i).copied().unwrap_or(Demand::N) != Demand::N
    }

    /// Renders the verdict like the paper's prose: `ap : [ee, ed]` means
    /// argument demands `e` under `e` and `d` under… etc.
    pub fn summary(&self) -> String {
        let fmt = |ds: &[Demand]| -> String {
            ds.iter()
                .map(|d| d.atom_name())
                .collect::<Vec<_>>()
                .join("")
        };
        format!(
            "{}: e->{} d->{}",
            self.name,
            fmt(&self.under_e),
            fmt(&self.under_d)
        )
    }
}

/// The complete result of a strictness analysis run.
#[derive(Clone, Debug)]
pub struct StrictnessReport {
    funs: BTreeMap<String, FunStrictness>,
    /// Phase timings (preprocess / analysis / collection).
    pub timings: PhaseTimings,
    /// Engine statistics, including table space.
    pub stats: TableStats,
    /// Per-predicate engine metrics; present iff the analyzer's
    /// [`profile`](StrictnessAnalyzer::profile) flag was set. Predicate
    /// keys are the demand program's (`sp$f/(n+1)`, `pm$c/…`, `$sa/0`).
    pub metrics: Option<MetricsReport>,
}

impl StrictnessReport {
    /// Verdicts for one function.
    pub fn strictness(&self, f: &str) -> Option<&FunStrictness> {
        self.funs.get(f)
    }

    /// All functions, sorted by name.
    pub fn functions(&self) -> impl Iterator<Item = &FunStrictness> {
        self.funs.values()
    }

    /// Total table space in bytes.
    pub fn table_bytes(&self) -> usize {
        self.stats.table_bytes
    }
}

/// The strictness analyzer.
#[derive(Clone, Debug, Default)]
pub struct StrictnessAnalyzer {
    /// Clause store mode.
    pub load_mode: LoadMode,
    /// Engine options.
    pub options: EngineOptions,
    /// Collect per-predicate engine metrics and phase timings into
    /// [`StrictnessReport::metrics`].
    pub profile: bool,
}

impl StrictnessAnalyzer {
    /// An analyzer with the default configuration.
    pub fn new() -> Self {
        StrictnessAnalyzer::default()
    }

    /// Parses and analyzes a functional program.
    ///
    /// # Errors
    ///
    /// Returns parse, translation, or engine errors.
    pub fn analyze_source(&self, src: &str) -> Result<StrictnessReport, AnalysisError> {
        let mut timer = Timer::start();
        let prog = parse_fun_program(src)?;
        self.analyze_program_timed(&prog, timer.lap())
    }

    /// Analyzes a parsed functional program.
    ///
    /// # Errors
    ///
    /// Returns translation or engine errors.
    pub fn analyze_program(&self, prog: &FunProgram) -> Result<StrictnessReport, AnalysisError> {
        self.analyze_program_timed(prog, std::time::Duration::ZERO)
    }

    /// Builds the demand-propagation database: the Figure 3 rules (all
    /// tabled), plus the `$sa` driver clauses, one per (function, demand).
    /// Shared by [`analyze`](StrictnessAnalyzer::analyze_program) and
    /// [`explain`](StrictnessAnalyzer::explain).
    fn load_demand(&self, prog: &FunProgram) -> Result<Database, AnalysisError> {
        let rules = translate_program(prog)?;
        let mut db = Database::new(self.load_mode);
        for r in &rules {
            db.assert_clause(r.head.clone(), r.body.clone())?;
        }
        db.table_all();
        let mut vc = 0u32;
        for (fname, &arity) in &prog.functions {
            for demand in ["e", "d"] {
                let mut args = vec![atom(demand)];
                args.extend((0..arity).map(|_| {
                    vc += 1;
                    Term::Var(Var(vc))
                }));
                db.assert_clause(atom("$sa"), vec![build(sp_functor(fname, arity), args)])?;
            }
        }
        db.set_tabled(Functor::new("$sa", 0), false);
        if self.load_mode == LoadMode::Compiled {
            db.build_indexes();
        }
        Ok(db)
    }

    /// Explains one strictness verdict: `goal` names a function and the
    /// demand placed on its result, `f(e)` or `f(d)`, and the result is the
    /// justification tree of every answer of `sp$f(demand, X1…Xn)` — each
    /// answer being one way demand propagates to the arguments.
    ///
    /// # Errors
    ///
    /// Returns parse errors (unknown function, bad demand), translation
    /// errors, or engine errors.
    pub fn explain(
        &self,
        prog: &FunProgram,
        goal: &str,
        max_depth: usize,
    ) -> Result<crate::explain::AnalysisExplanation, AnalysisError> {
        let mut b = tablog_term::Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b)
            .map_err(|e| AnalysisError::Parse(e.to_string()))?;
        let f = t
            .functor()
            .ok_or_else(|| AnalysisError::Parse(format!("bad goal {goal}")))?;
        let name = sym_name(f.name);
        let arity = *prog.functions.get(&name).ok_or_else(|| {
            AnalysisError::Unsupported(format!("unknown function {name} in goal {goal}"))
        })?;
        let demand = match t.args() {
            [Term::Atom(s)] if matches!(sym_name(*s).as_str(), "e" | "d" | "n") => Term::Atom(*s),
            _ => {
                return Err(AnalysisError::Parse(format!(
                    "strictness goal must be {name}(e), {name}(d) or {name}(n)"
                )))
            }
        };
        let mut args = vec![demand];
        args.extend((0..arity).map(|_| Term::Var(b.fresh_var())));
        let db = self.load_demand(prog)?;
        let engine = Engine::new(db, self.options.clone());
        let abstract_term = build(sp_functor(&name, arity), args);
        crate::explain::explain_abstract(&engine, goal, &abstract_term, &b, max_depth)
    }

    fn analyze_program_timed(
        &self,
        prog: &FunProgram,
        parse_time: std::time::Duration,
    ) -> Result<StrictnessReport, AnalysisError> {
        let mut timer = Timer::start();
        // --- Preprocess: translate + load. ---
        let db = self.load_demand(prog)?;
        let mut options = self.options.clone();
        let registry = self
            .profile
            .then(|| crate::profile::install_registry(&mut options));
        let mut spans = crate::profile::PhaseSpans::from_options(&options);
        let mut engine = Engine::new(db, options);
        let preprocess = parse_time + timer.lap();

        // --- Analysis. ---
        engine.options_mut().parent_span = spans.enter("analysis");
        let qb = tablog_term::Bindings::new();
        let eval = engine
            .evaluate(&[atom("$sa")], &[], &qb)?
            .require_complete()?;
        spans.exit();
        let analysis = timer.lap();

        // --- Collection. ---
        spans.enter("collection");
        let mut funs = BTreeMap::new();
        for (fname, &arity) in &prog.functions {
            let f = sp_functor(fname, arity);
            let views = eval.subgoals_of(f);
            let per_demand = |want: &str| -> Vec<Demand> {
                let mut verdict = vec![Demand::E; arity];
                let mut seen = false;
                for v in &views {
                    // The driver's calls have the demand bound, rest free.
                    let call = v.call_args();
                    if call.is_empty() || call[0] != atom(want) {
                        continue;
                    }
                    if !call[1..].iter().all(Term::is_var) {
                        continue;
                    }
                    seen = true;
                    for t in v.answer_tuples() {
                        for i in 0..arity {
                            verdict[i] = verdict[i].meet(term_demand(&t[i + 1]));
                        }
                    }
                }
                if !seen {
                    vec![Demand::N; arity]
                } else {
                    verdict
                }
            };
            let under_e = per_demand("e");
            let under_d = per_demand("d");
            funs.insert(
                fname.clone(),
                FunStrictness {
                    name: fname.clone(),
                    arity,
                    under_e,
                    under_d,
                },
            );
        }
        spans.exit();
        let collection = timer.lap();

        let timings = PhaseTimings {
            preprocess,
            analysis,
            collection,
        };
        let metrics = registry.map(|r| {
            crate::profile::finish(
                &r,
                &timings,
                engine.options().describe(),
                Some(crate::profile::engine_snapshot(&eval, self.options.domain)),
            )
        });
        Ok(StrictnessReport {
            funs,
            timings,
            stats: eval.stats(),
            metrics,
        })
    }
}

fn term_demand(t: &Term) -> Demand {
    match t {
        Term::Atom(s) if sym_name(*s) == "e" => Demand::E,
        Term::Atom(s) if sym_name(*s) == "d" => Demand::D,
        _ => Demand::N,
    }
}

fn sp_functor(fname: &str, arity: usize) -> Functor {
    Functor {
        name: intern(&format!("sp${fname}")),
        arity: arity + 1,
    }
}

fn build(f: Functor, args: Vec<Term>) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.into())
    }
}

/// Translation state for one equation.
struct Ctx<'p> {
    prog: &'p FunProgram,
    next_var: u32,
    /// τ variable of each equation variable.
    tau: BTreeMap<String, Var>,
    /// Auxiliary (supplementary-tabling) rules generated for nested
    /// subexpressions; see [`translate_program`].
    aux_rules: Vec<Rule>,
    /// Shared counter for unique auxiliary predicate names.
    aux_counter: u32,
}

impl<'p> Ctx<'p> {
    fn fresh(&mut self) -> Term {
        let v = Var(self.next_var);
        self.next_var += 1;
        Term::Var(v)
    }

    fn tau_var(&mut self, x: &str) -> Term {
        if let Some(v) = self.tau.get(x) {
            return Term::Var(*v);
        }
        let v = Var(self.next_var);
        self.next_var += 1;
        self.tau.insert(x.to_owned(), v);
        Term::Var(v)
    }

    /// `E[expr]α` — demand propagation through an rhs expression.
    /// Returns the alternative goal sequences (if-then-else branches).
    fn expr(&mut self, e: &Expr, alpha: Term) -> Result<Vec<Vec<Term>>, AnalysisError> {
        match e {
            Expr::Var(x) => {
                let tau = self.tau_var(x);
                Ok(vec![vec![structure("=", vec![tau, alpha])]])
            }
            Expr::Int(_) => Ok(vec![vec![]]),
            Expr::Ctor(c, args) => {
                let alphas: Vec<Term> = (0..args.len()).map(|_| self.fresh()).collect();
                let mut head_args = vec![alpha];
                head_args.extend(alphas.iter().cloned());
                let lit = structure(&format!("sp$c_{c}"), head_args);
                self.seq(lit, args, &alphas)
            }
            Expr::App(f, args) => {
                if self.prog.arity(f) != Some(args.len()) {
                    return Err(AnalysisError::Unsupported(format!(
                        "call to unknown function {f}/{}",
                        args.len()
                    )));
                }
                let alphas: Vec<Term> = (0..args.len()).map(|_| self.fresh()).collect();
                let mut head_args = vec![alpha];
                head_args.extend(alphas.iter().cloned());
                let lit = build(sp_functor(f, args.len()), head_args);
                self.seq(lit, args, &alphas)
            }
            Expr::Prim(_, a, b) => {
                let a1 = self.fresh();
                let a2 = self.fresh();
                let lit = structure("sp$prim2", vec![alpha, a1.clone(), a2.clone()]);
                let la = self.subexpr(a, a1)?;
                let lb = self.subexpr(b, a2)?;
                Ok(cross(vec![vec![lit]], cross(la, lb)))
            }
            Expr::If(c, t, f) => {
                // The condition gets an e-demand (booleans are flat); the
                // result demand flows to whichever branch is taken.
                let lc = self.subexpr(c, atom("e"))?;
                let lt = self.subexpr(t, alpha.clone())?;
                let lf = self.subexpr(f, alpha)?;
                let mut out = cross(lc.clone(), lt);
                out.extend(cross(lc, lf));
                Ok(out)
            }
        }
    }

    fn seq(
        &mut self,
        lit: Term,
        args: &[Expr],
        alphas: &[Term],
    ) -> Result<Vec<Vec<Term>>, AnalysisError> {
        let mut alts = vec![vec![lit]];
        for (a, alpha) in args.iter().zip(alphas) {
            let sub = self.subexpr(a, alpha.clone())?;
            alts = cross(alts, sub);
        }
        Ok(alts)
    }

    /// Translates an argument subexpression. Compound subexpressions are
    /// factored into their own *tabled auxiliary predicate* — the paper's
    /// "supplementary tabling" (Section 4.2): without it, a clause for a
    /// deeply nested expression enumerates the cross product of every
    /// subtree's demand alternatives, which is exponential in the nesting
    /// depth. Tabling each subtree caps that at one table per node.
    fn subexpr(&mut self, e: &Expr, alpha: Term) -> Result<Vec<Vec<Term>>, AnalysisError> {
        match e {
            Expr::Var(_) | Expr::Int(_) => self.expr(e, alpha),
            _ => {
                let fvars = expr_vars(e);
                let name = format!("sp$x{}", self.aux_counter);
                self.aux_counter += 1;
                // Auxiliary clause: sp$xN(D, τv1…τvk) :- E[e]D.
                // Its variables are renumbered independently on assert, so
                // sharing this context's numbering is safe.
                let dvar = self.fresh();
                let tau_args: Vec<Term> = fvars.iter().map(|v| self.tau_var(v)).collect();
                let mut head_args = vec![dvar.clone()];
                head_args.extend(tau_args.iter().cloned());
                let head = structure(&name, head_args);
                let bodies = self.expr(e, dvar)?;
                for body in bodies {
                    self.aux_rules.push(Rule::new(head.clone(), body));
                }
                // Call site: sp$xN(α, τvars).
                let mut call_args = vec![alpha];
                call_args.extend(tau_args);
                Ok(vec![vec![structure(&name, call_args)]])
            }
        }
    }

    /// `P[pat]β` — demand flowing bottom-up through an lhs pattern.
    fn pattern(&mut self, p: &Pattern, beta: Term, out: &mut Vec<Term>) {
        match p {
            Pattern::Var(x) => {
                let tau = self.tau_var(x);
                out.push(structure("=", vec![tau, beta]));
            }
            Pattern::Int(_) => {
                // Matching a literal evaluates the position fully (flat).
                out.push(structure("=", vec![beta, atom("e")]));
            }
            Pattern::Ctor(c, ps) => {
                let betas: Vec<Term> = (0..ps.len()).map(|_| self.fresh()).collect();
                for (sub, b) in ps.iter().zip(&betas) {
                    self.pattern(sub, b.clone(), out);
                }
                let mut args = vec![beta];
                args.extend(betas);
                out.push(structure(&format!("pm$c_{c}"), args));
            }
        }
    }
}

fn cross(a: Vec<Vec<Term>>, b: Vec<Vec<Term>>) -> Vec<Vec<Term>> {
    let mut out = Vec::new();
    for x in &a {
        for y in &b {
            let mut v = x.clone();
            v.extend(y.iter().cloned());
            out.push(v);
        }
    }
    out
}

/// Translates a functional program into the demand-propagation logic
/// program of Figure 3 (function clauses, the `n`-demand facts, and the
/// base `sp$c_*` / `pm$c_*` / `sp$prim2` fact predicates).
///
/// # Errors
///
/// Returns [`AnalysisError::Unsupported`] on calls to unknown functions.
pub fn translate_program(prog: &FunProgram) -> Result<Vec<Rule>, AnalysisError> {
    let mut rules = Vec::new();
    let mut aux_counter = 0u32;
    for eq in &prog.equations {
        rules.extend(translate_equation(prog, eq, &mut aux_counter)?);
    }
    // n-demand clause per function: sp$f(n, X1…Xn).
    for (fname, &arity) in &prog.functions {
        let args: Vec<Term> = std::iter::once(atom("n"))
            .chain((0..arity).map(|i| Term::Var(Var(i as u32))))
            .collect();
        rules.push(Rule::new(build(sp_functor(fname, arity), args), Vec::new()));
    }
    // Base facts for constructors.
    for (c, &k) in &prog.constructors {
        rules.extend(ctor_rules(c, k));
    }
    // Primitives: strict in both arguments, flat result.
    for d in ["e", "d"] {
        rules.push(Rule::new(
            structure("sp$prim2", vec![atom(d), atom("e"), atom("e")]),
            Vec::new(),
        ));
    }
    rules.push(Rule::new(
        structure(
            "sp$prim2",
            vec![atom("n"), Term::Var(Var(0)), Term::Var(Var(1))],
        ),
        Vec::new(),
    ));
    Ok(rules)
}

fn translate_equation(
    prog: &FunProgram,
    eq: &Equation,
    aux_counter: &mut u32,
) -> Result<Vec<Rule>, AnalysisError> {
    let arity = eq.lhs.len();
    // Head: sp$f(D, X1..Xn); D = var 0, Xi = vars 1..n.
    let mut ctx = Ctx {
        prog,
        next_var: (arity + 1) as u32,
        tau: BTreeMap::new(),
        aux_rules: Vec::new(),
        aux_counter: *aux_counter,
    };
    let dvar = Term::Var(Var(0));
    let xvars: Vec<Term> = (1..=arity).map(|i| Term::Var(Var(i as u32))).collect();
    let rhs_alts = ctx.expr(&eq.rhs, dvar.clone())?;
    let mut pattern_goals = Vec::new();
    for (p, x) in eq.lhs.iter().zip(&xvars) {
        ctx.pattern(p, x.clone(), &mut pattern_goals);
    }
    let mut head_args = vec![dvar];
    head_args.extend(xvars);
    let head = build(sp_functor(&eq.fname, arity), head_args);
    *aux_counter = ctx.aux_counter;
    let mut rules: Vec<Rule> = rhs_alts
        .into_iter()
        .map(|mut body| {
            body.extend(pattern_goals.iter().cloned());
            Rule::new(head.clone(), body)
        })
        .collect();
    rules.extend(ctx.aux_rules);
    Ok(rules)
}

/// Free variables of an expression, in first-occurrence order.
fn expr_vars(e: &Expr) -> Vec<String> {
    fn go(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Var(x) => {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
            Expr::Int(_) => {}
            Expr::Ctor(_, args) | Expr::App(_, args) => {
                for a in args {
                    go(a, out);
                }
            }
            Expr::Prim(_, a, b) => {
                go(a, out);
                go(b, out);
            }
            Expr::If(c, t, f) => {
                go(c, out);
                go(t, out);
                go(f, out);
            }
        }
    }
    let mut out = Vec::new();
    go(e, &mut out);
    out
}

fn ctor_rules(c: &str, k: usize) -> Vec<Rule> {
    let mut out = Vec::new();
    let spf = format!("sp$c_{c}");
    let pmf = format!("pm$c_{c}");
    // sp$c(e, e…e): full demand on the cell demands its components fully.
    out.push(Rule::new(
        structure(
            &spf,
            std::iter::once(atom("e"))
                .chain((0..k).map(|_| atom("e")))
                .collect(),
        ),
        Vec::new(),
    ));
    // sp$c(d, _…_) and sp$c(n, _…_): WHNF or no demand leaves them free.
    for d in ["d", "n"] {
        let args: Vec<Term> = std::iter::once(atom(d))
            .chain((0..k).map(|i| Term::Var(Var(i as u32))))
            .collect();
        out.push(Rule::new(structure(&spf, args), Vec::new()));
    }
    // pm$c(e, e…e): if every component ends up fully evaluated, matching
    // this pattern amounts to full evaluation of the position.
    out.push(Rule::new(
        structure(
            &pmf,
            std::iter::once(atom("e"))
                .chain((0..k).map(|_| atom("e")))
                .collect(),
        ),
        Vec::new(),
    ));
    // pm$c(d, t) for every component-demand tuple except all-e.
    let demands = ["e", "d", "n"];
    let mut idx = vec![0usize; k];
    loop {
        if !idx.iter().all(|&i| i == 0) || k == 0 {
            // Skip the all-e tuple (idx all zero when k > 0 is all-e).
        }
        let tuple_is_all_e = idx.iter().all(|&i| i == 0);
        if k > 0 && !tuple_is_all_e {
            let args: Vec<Term> = std::iter::once(atom("d"))
                .chain(idx.iter().map(|&i| atom(demands[i])))
                .collect();
            out.push(Rule::new(structure(&pmf, args), Vec::new()));
        }
        // Next tuple.
        let mut pos = 0;
        loop {
            if pos == k {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < demands.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
        if k == 0 {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPEND: &str = "
        ap(nil, ys) = ys;
        ap(x : xs, ys) = x : ap(xs, ys);
    ";

    #[test]
    fn figure4_ap_strictness() {
        let report = StrictnessAnalyzer::new().analyze_source(APPEND).unwrap();
        let ap = report.strictness("ap").unwrap();
        // Paper: sp_ap(e, X, Y) has the single solution X = e, Y = e.
        assert_eq!(ap.under_e, vec![Demand::E, Demand::E]);
        // sp_ap(d, …): {X=e, Y=d} and {X=d, Y=n} — strict (d) in the first
        // argument, not strict in the second.
        assert_eq!(ap.under_d, vec![Demand::D, Demand::N]);
        assert!(ap.is_strict(0) && ap.is_strict(1));
    }

    #[test]
    fn k_combinator_not_strict_in_second() {
        let src = "k(x, y) = x;";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let k = report.strictness("k").unwrap();
        assert_eq!(k.under_e, vec![Demand::E, Demand::N]);
        assert!(k.is_strict(0));
        assert!(!k.is_strict(1));
    }

    #[test]
    fn head_forces_only_whnf_of_spine() {
        let src = "hd(x : xs) = x;";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let hd = report.strictness("hd").unwrap();
        // Under e-demand: the element is fully demanded but the tail is
        // not, so the list argument as a whole gets only a d demand.
        assert_eq!(hd.under_e, vec![Demand::D]);
    }

    #[test]
    fn arithmetic_is_strict_in_both() {
        let src = "plus(x, y) = x + y;";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let p = report.strictness("plus").unwrap();
        assert_eq!(p.under_e, vec![Demand::E, Demand::E]);
        assert_eq!(p.under_d, vec![Demand::E, Demand::E]);
    }

    #[test]
    fn if_is_strict_in_condition_only_joint_branches() {
        // Under full demand, x is always needed (condition); y only in one
        // branch; z in the other.
        let src = "pick(x, y, z) = if x == 0 then y else z;";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let p = report.strictness("pick").unwrap();
        assert_eq!(p.under_e, vec![Demand::E, Demand::N, Demand::N]);
        assert!(p.is_strict(0));
    }

    #[test]
    fn constant_function_is_strict_in_nothing() {
        let src = "c(x) = 42;";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let c = report.strictness("c").unwrap();
        assert_eq!(c.under_e, vec![Demand::N]);
    }

    #[test]
    fn length_demands_spine_not_elements() {
        let src = "
            len(nil) = 0;
            len(x : xs) = 1 + len(xs);
        ";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let l = report.strictness("len").unwrap();
        // The whole spine is forced but elements never: demand d.
        assert_eq!(l.under_e, vec![Demand::D]);
    }

    #[test]
    fn sum_demands_everything() {
        let src = "
            sum(nil) = 0;
            sum(x : xs) = x + sum(xs);
        ";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        let s = report.strictness("sum").unwrap();
        assert_eq!(s.under_e, vec![Demand::E]);
    }

    #[test]
    fn mutual_recursion_strictness() {
        let src = "
            evenlen(nil) = true;
            evenlen(x : xs) = oddlen(xs);
            oddlen(nil) = false;
            oddlen(x : xs) = evenlen(xs);
        ";
        let report = StrictnessAnalyzer::new().analyze_source(src).unwrap();
        assert_eq!(
            report.strictness("evenlen").unwrap().under_e,
            vec![Demand::D]
        );
        assert_eq!(
            report.strictness("oddlen").unwrap().under_e,
            vec![Demand::D]
        );
    }

    #[test]
    fn unknown_function_is_reported() {
        let e = StrictnessAnalyzer::new().analyze_source("f(x) = g(x);");
        assert!(matches!(e, Err(AnalysisError::Unsupported(_))));
    }

    #[test]
    fn analysis_agrees_with_interpreter_on_append() {
        // Cross-check: the analysis says ap is strict in arg 1; running
        // ap(⊥, list) must then diverge, while a non-strict position is fine.
        use tablog_funlang::{eval_main, parse_fun_program, EvalError};
        let diverge = "
            ap(nil, ys) = ys;
            ap(x : xs, ys) = x : ap(xs, ys);
            bot = bot;
            main = ap(bot, nil);
        ";
        let e = eval_main(&parse_fun_program(diverge).unwrap()).unwrap_err();
        assert_eq!(e, EvalError::OutOfFuel);
        let fine = "
            k(x, y) = x;
            bot = bot;
            main = k(1, bot);
        ";
        assert_eq!(
            eval_main(&parse_fun_program(fine).unwrap())
                .unwrap()
                .to_string(),
            "1"
        );
    }

    #[test]
    fn timings_and_space_reported() {
        let report = StrictnessAnalyzer::new().analyze_source(APPEND).unwrap();
        assert!(report.table_bytes() > 0);
        assert!(report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn summary_renders() {
        let report = StrictnessAnalyzer::new().analyze_source(APPEND).unwrap();
        assert_eq!(
            report.strictness("ap").unwrap().summary(),
            "ap: e->ee d->dn"
        );
    }
}
