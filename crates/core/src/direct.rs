//! A hand-coded, special-purpose Prop groundness analyzer — the
//! reproduction's stand-in for GAIA in the paper's Table 2.
//!
//! Where the declarative route (module [`crate::groundness`]) *generates a
//! logic program* and hands it to the general-purpose tabled engine, this
//! module is written the way one writes a dedicated abstract interpreter:
//! a goal-directed fixpoint over `(predicate, call pattern)` pairs with an
//! explicit worklist, dependency tracking, and Prop-domain operations
//! with live-variable narrowing. Both implement exactly the same
//! analysis, so their results must coincide — one of the reproduction's
//! integration tests — and their running times are Table 2.
//!
//! The solver is generic over [`AbstractDomain`], so the same worklist
//! runs on enumerative truth tables ([`tablog_domain::TableDomain`], the
//! default) or on BDD-backed Pos ([`tablog_domain::BddDomain`]); pick the
//! backend with [`DirectAnalyzer::domain`].

use crate::error::AnalysisError;
use crate::groundness::{transform_program, EntryPoint, IffMode, GP_PREFIX};
use crate::pipeline::{PhaseTimings, Timer};
use crate::prop::{PropTable, MAX_VARS};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use tablog_domain::{AbstractDomain, BddDomain, DomainKind, TableDomain};
use tablog_syntax::{parse_program, Program};
use tablog_term::{sym_name, Functor, Term};
use tablog_trace::{MetricsReport, PredStats, SpanEmitter, SpanRecorder};

/// An abstract clause in the analyzer's internal form: head variables plus
/// a list of constraints over dense variable ids.
#[derive(Clone, Debug)]
struct AbsClause {
    head_vars: Vec<usize>,
    goals: Vec<AbsGoal>,
    /// `last_use[v]` = index of the last goal mentioning `v`.
    last_use: Vec<usize>,
}

#[derive(Clone, Debug)]
enum AbsGoal {
    /// `x ⇔ y1 ∧ … ∧ yk`.
    Iff(usize, Vec<usize>),
    /// A call to a user predicate.
    Call(Functor, Vec<usize>),
}

/// Results of the direct analyzer for one predicate.
#[derive(Clone, Debug)]
pub struct DirectGroundness {
    /// Source predicate name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// Output groundness formula (union over all analyzed call patterns).
    pub prop: PropTable,
    /// Per-argument meet: definitely ground on success.
    pub definitely_ground: Vec<bool>,
}

/// The complete result of a direct-analyzer run.
#[derive(Clone, Debug)]
pub struct DirectReport {
    preds: BTreeMap<(String, usize), DirectGroundness>,
    /// Phase timings (preprocess / analysis / collection).
    pub timings: PhaseTimings,
    /// Number of `(predicate, call pattern)` pairs analyzed.
    pub pairs: usize,
    /// Worklist iterations performed.
    pub iterations: usize,
    /// Per-predicate metrics; present iff the analyzer's
    /// [`profile`](DirectAnalyzer::profile) flag was set. The direct
    /// analyzer has no engine, so the rows are built from its own worklist
    /// counters: `subgoals` = call patterns, `clause_resolutions` = clause
    /// evaluations, `completed` = pairs solved to fixpoint.
    pub metrics: Option<MetricsReport>,
    /// The Prop-domain backend the analysis ran on.
    pub domain: DomainKind,
    /// Bytes attributed to the domain backend itself (BDD manager arena
    /// and memo tables); `0` under the enumerative table backend.
    pub domain_bytes: usize,
    /// Live BDD nodes in the backend's manager; `0` under the table
    /// backend.
    pub bdd_nodes: usize,
}

impl DirectReport {
    /// Result for one predicate.
    pub fn output_groundness(&self, name: &str, arity: usize) -> Option<&DirectGroundness> {
        self.preds.get(&(name.to_owned(), arity))
    }

    /// All analyzed predicates, sorted by name.
    pub fn predicates(&self) -> impl Iterator<Item = &DirectGroundness> {
        self.preds.values()
    }
}

/// The success-set rows one clause contributes at fixpoint.
#[derive(Clone, Debug)]
pub struct DirectClauseSupport {
    /// Clause position within the predicate, in source order.
    pub clause_index: usize,
    /// Rows of the clause's contribution (each `arity` long, `true` =
    /// ground).
    pub rows: Vec<Vec<bool>>,
}

/// A clause-contribution explanation of one direct-analyzer result; see
/// [`DirectAnalyzer::explain`].
#[derive(Clone, Debug)]
pub struct DirectExplanation {
    /// The goal as given (`app(g, f, f)` notation).
    pub goal: String,
    /// Predicate name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// The fixpoint success set under the goal's call pattern.
    pub rows: Vec<Vec<bool>>,
    /// Per-clause contributions; their union is [`rows`](Self::rows).
    pub clauses: Vec<DirectClauseSupport>,
}

fn row_str(row: &[bool]) -> String {
    row.iter().map(|&b| if b { 'g' } else { 'f' }).collect()
}

impl DirectExplanation {
    /// `true` if the pattern has an empty success set.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the fixpoint rows and each clause's contribution as text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let fmt_rows = |rows: &[Vec<bool>]| -> String {
            if rows.is_empty() {
                "(none)".to_owned()
            } else {
                rows.iter()
                    .map(|r| row_str(r))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        let mut out = format!(
            "goal: {}\n{}/{} fixpoint rows: {}\n",
            self.goal,
            self.name,
            self.arity,
            fmt_rows(&self.rows)
        );
        for c in &self.clauses {
            let _ = writeln!(out, "  clause #{}: {}", c.clause_index, fmt_rows(&c.rows));
        }
        out
    }

    /// Renders the explanation as one JSON object; rows are `g`/`f`
    /// strings, one character per argument.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        use tablog_trace::json::escape;
        let push_rows = |s: &mut String, rows: &[Vec<bool>]| {
            s.push('[');
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", row_str(r));
            }
            s.push(']');
        };
        let mut s = format!(
            "{{\"goal\":\"{}\",\"pred\":\"{}/{}\",\"rows\":",
            escape(&self.goal),
            escape(&self.name),
            self.arity
        );
        push_rows(&mut s, &self.rows);
        s.push_str(",\"clauses\":[");
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"index\":{},\"rows\":", c.clause_index);
            push_rows(&mut s, &c.rows);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

type Key<D> = (Functor, <D as AbstractDomain>::Value);

/// The worklist fixpoint solver, generic over the Prop-domain backend.
/// `(predicate, call pattern)` pairs key the result table; since every
/// backend's `Value` is canonical (bitsets for tables, hash-consed node
/// handles for BDDs), `Eq`/`Hash` on values is semantic equality and the
/// keys behave identically across backends.
struct Solver<D: AbstractDomain> {
    domain: D,
    clauses: HashMap<Functor, Vec<AbsClause>>,
    results: HashMap<Key<D>, D::Value>,
    deps: HashMap<Key<D>, HashSet<Key<D>>>,
    queue: VecDeque<Key<D>>,
    queued: HashSet<Key<D>>,
    iterations: usize,
    /// Per-functor counters, maintained only when profiling.
    profile: Option<BTreeMap<Functor, PredStats>>,
}

impl<D: AbstractDomain> Solver<D> {
    fn enqueue(&mut self, key: Key<D>) {
        if self.queued.insert(key.clone()) {
            self.queue.push_back(key);
        }
    }

    fn demand(&mut self, f: Functor, pattern: D::Value, caller: Option<&Key<D>>) -> D::Value {
        let key = (f, pattern);
        if let Some(c) = caller {
            self.deps.entry(key.clone()).or_default().insert(c.clone());
        }
        if let Some(r) = self.results.get(&key) {
            return r.clone();
        }
        if let Some(stats) = self.profile.as_mut() {
            stats.entry(f).or_default().subgoals += 1;
        }
        let bottom = self.domain.bottom(f.arity);
        self.results.insert(key.clone(), bottom.clone());
        self.enqueue(key);
        bottom
    }

    fn run(&mut self) -> Result<(), AnalysisError> {
        while let Some(key) = self.queue.pop_front() {
            self.queued.remove(&key);
            self.iterations += 1;
            let computed = self.evaluate(&key)?;
            let old = self.results.get(&key).expect("seeded").clone();
            let merged = self.domain.join(&old, &computed);
            if merged != old {
                self.results.insert(key.clone(), merged);
                if let Some(callers) = self.deps.get(&key).cloned() {
                    for c in callers {
                        self.enqueue(c);
                    }
                }
            }
        }
        Ok(())
    }

    fn evaluate(&mut self, key: &Key<D>) -> Result<D::Value, AnalysisError> {
        let (f, pattern) = key;
        let clauses = self.clauses.get(f).cloned().unwrap_or_default();
        if let Some(stats) = self.profile.as_mut() {
            stats.entry(*f).or_default().clause_resolutions += clauses.len() as u64;
        }
        let mut acc = self.domain.bottom(f.arity);
        for clause in &clauses {
            let t = self.eval_clause(clause, pattern, key)?;
            acc = self.domain.join(&acc, &t);
        }
        Ok(acc)
    }

    fn eval_clause(
        &mut self,
        clause: &AbsClause,
        pattern: &D::Value,
        key: &Key<D>,
    ) -> Result<D::Value, AnalysisError> {
        // Active variable set, initially the head variables; the table is
        // the call pattern, one column per active variable.
        let mut active: Vec<usize> = clause.head_vars.clone();
        let mut table = pattern.clone();
        let head_set: HashSet<usize> = clause.head_vars.iter().copied().collect();
        for (i, goal) in clause.goals.iter().enumerate() {
            let mentioned: Vec<usize> = match goal {
                AbsGoal::Iff(x, ys) => {
                    let mut m = vec![*x];
                    m.extend_from_slice(ys);
                    m
                }
                AbsGoal::Call(_, args) => args.clone(),
            };
            // Introduce unseen variables as unconstrained columns. The
            // width cap is enforced uniformly (even though BDDs could go
            // wider) so both backends accept exactly the same programs.
            for v in &mentioned {
                if !active.contains(v) {
                    if active.len() + 1 > MAX_VARS {
                        return Err(AnalysisError::Unsupported(format!(
                            "clause needs more than {MAX_VARS} live Prop variables"
                        )));
                    }
                    table = self.domain.extend(&table, 1);
                    active.push(*v);
                }
            }
            let pos =
                |v: usize| -> usize { active.iter().position(|&a| a == v).expect("active var") };
            match goal {
                AbsGoal::Iff(x, ys) => {
                    let ix = pos(*x);
                    let iys: Vec<usize> = ys.iter().map(|&y| pos(y)).collect();
                    table = self.domain.constrain_iff(&table, ix, &iys);
                }
                AbsGoal::Call(g, args) => {
                    let positions: Vec<usize> = args.iter().map(|&a| pos(a)).collect();
                    let cp = self.domain.project(&table, &positions);
                    let r = self.demand(*g, cp, Some(key));
                    table = self.domain.constrain_relation(&table, &positions, &r);
                }
            }
            if self.domain.is_empty(&table) {
                return Ok(self.domain.bottom(clause.head_vars.len()));
            }
            // Narrow to live variables: head vars plus those used later.
            let keep: Vec<usize> = active
                .iter()
                .copied()
                .filter(|v| head_set.contains(v) || clause.last_use[*v] > i)
                .collect();
            if keep.len() != active.len() {
                let positions: Vec<usize> = keep
                    .iter()
                    .map(|v| active.iter().position(|a| a == v).expect("active var"))
                    .collect();
                table = self.domain.project(&table, &positions);
                active = keep;
            }
        }
        let head_positions: Vec<usize> = clause
            .head_vars
            .iter()
            .map(|v| active.iter().position(|a| a == v).expect("head var live"))
            .collect();
        Ok(self.domain.project(&table, &head_positions))
    }
}

/// The direct (special-purpose) groundness analyzer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectAnalyzer {
    /// Collect per-predicate worklist metrics and phase timings into
    /// [`DirectReport::metrics`].
    pub profile: bool,
    /// Additionally record phase spans into the metrics report's span
    /// tree, on the same process-wide timeline the engine's spans use —
    /// so the direct analyzer's phases line up with the declarative
    /// analyzers' in a combined profile. Requires `profile`.
    pub record_spans: bool,
    /// Which Prop-domain backend the worklist solver runs on. The
    /// default enumerative [`DomainKind::Table`] matches the historical
    /// analyzer bit for bit; [`DomainKind::Bdd`] computes the same
    /// results on hash-consed BDDs.
    pub domain: DomainKind,
}

impl DirectAnalyzer {
    /// Creates the analyzer.
    pub fn new() -> Self {
        DirectAnalyzer::default()
    }

    /// Parses and analyzes `src` with fully open call patterns.
    ///
    /// # Errors
    ///
    /// Returns parse errors, or [`AnalysisError::Unsupported`] if a clause
    /// exceeds the truth-table width limit.
    pub fn analyze_source(&self, src: &str) -> Result<DirectReport, AnalysisError> {
        let mut timer = Timer::start();
        let program = parse_program(src)?;
        self.analyze(&program, &[], timer.lap())
    }

    /// Analyzes a parsed program with fully open call patterns.
    ///
    /// # Errors
    ///
    /// As [`DirectAnalyzer::analyze_source`].
    pub fn analyze_program(&self, program: &Program) -> Result<DirectReport, AnalysisError> {
        self.analyze(program, &[], std::time::Duration::ZERO)
    }

    /// Goal-directed analysis from entry points.
    ///
    /// # Errors
    ///
    /// As [`DirectAnalyzer::analyze_source`].
    pub fn analyze_with_entries(
        &self,
        program: &Program,
        entries: &[EntryPoint],
    ) -> Result<DirectReport, AnalysisError> {
        self.analyze(program, entries, std::time::Duration::ZERO)
    }

    /// Lowers the program into the analyzer's internal form and builds a
    /// fresh solver over `domain`. Shared by
    /// [`analyze`](DirectAnalyzer::analyze_program) and
    /// [`explain`](DirectAnalyzer::explain).
    fn build_solver<D: AbstractDomain>(
        &self,
        domain: D,
        program: &Program,
    ) -> Result<(Solver<D>, crate::groundness::PredSet), AnalysisError> {
        let (rules, preds) = transform_program(program, IffMode::Builtin)?;
        let mut clauses: HashMap<Functor, Vec<AbsClause>> = HashMap::new();
        for r in &rules {
            let f = r.head.functor().expect("abstract heads are callable");
            clauses.entry(f).or_default().push(lower_clause(r)?);
        }
        Ok((
            Solver {
                domain,
                clauses,
                results: HashMap::new(),
                deps: HashMap::new(),
                queue: VecDeque::new(),
                queued: HashSet::new(),
                iterations: 0,
                profile: self.profile.then(BTreeMap::new),
            },
            preds,
        ))
    }

    /// Explains one fixpoint result: `goal` is an [`EntryPoint`]-style call
    /// pattern (`app(g, f, f)` — `g`round / `f`ree). The analyzer runs to
    /// fixpoint from that pattern, then re-evaluates each clause of the
    /// predicate once against the fixpoint to report which success-set rows
    /// each clause contributes — the worklist analog of a justification
    /// tree, since the hand-coded analyzer keeps no tables to walk.
    ///
    /// # Errors
    ///
    /// Returns parse errors, unknown predicates, or width-limit errors.
    pub fn explain(
        &self,
        program: &Program,
        goal: &str,
    ) -> Result<DirectExplanation, AnalysisError> {
        match self.domain {
            DomainKind::Table => self.explain_in(TableDomain, program, goal),
            DomainKind::Bdd => self.explain_in(BddDomain::new(), program, goal),
        }
    }

    fn explain_in<D: AbstractDomain>(
        &self,
        domain: D,
        program: &Program,
        goal: &str,
    ) -> Result<DirectExplanation, AnalysisError> {
        let e = EntryPoint::parse(goal)?;
        let arity = e.ground_args.len();
        let f = gp(tablog_term::intern(&e.name), arity);
        let (mut solver, preds) = self.build_solver(domain, program)?;
        if !preds.contains_key(&(tablog_term::intern(&e.name), arity)) {
            return Err(AnalysisError::Unsupported(format!(
                "unknown predicate {}/{arity} in goal {goal}",
                e.name
            )));
        }
        let mut cp = solver.domain.top(arity);
        for (i, &g) in e.ground_args.iter().enumerate() {
            if g {
                cp = solver.domain.constrain_value(&cp, i, true);
            }
        }
        solver.demand(f, cp.clone(), None);
        solver.run()?;
        let key = (f, cp);
        let fix = solver.results.get(&key).cloned();
        let rows = match fix {
            Some(v) => solver.domain.to_table(&v).rows(),
            None => Vec::new(),
        };
        let abs_clauses = solver.clauses.get(&f).cloned().unwrap_or_default();
        let mut clauses = Vec::new();
        for (ci, clause) in abs_clauses.iter().enumerate() {
            let t = solver.eval_clause(clause, &key.1, &key)?;
            clauses.push(DirectClauseSupport {
                clause_index: ci,
                rows: solver.domain.to_table(&t).rows(),
            });
        }
        Ok(DirectExplanation {
            goal: goal.to_owned(),
            name: e.name,
            arity,
            rows,
            clauses,
        })
    }

    fn analyze(
        &self,
        program: &Program,
        entries: &[EntryPoint],
        parse_time: std::time::Duration,
    ) -> Result<DirectReport, AnalysisError> {
        match self.domain {
            DomainKind::Table => self.analyze_in(TableDomain, program, entries, parse_time),
            DomainKind::Bdd => self.analyze_in(BddDomain::new(), program, entries, parse_time),
        }
    }

    fn analyze_in<D: AbstractDomain>(
        &self,
        domain: D,
        program: &Program,
        entries: &[EntryPoint],
        parse_time: std::time::Duration,
    ) -> Result<DirectReport, AnalysisError> {
        let mut timer = Timer::start();
        let mut spans =
            (self.profile && self.record_spans).then(|| (SpanRecorder::new(), SpanEmitter::new()));
        // Preprocess: reuse the Figure 1 transform, then lower the abstract
        // rules into the analyzer's dense internal form.
        if let Some((rec, em)) = spans.as_mut() {
            em.enter(rec, "preprocess", None);
        }
        let (mut solver, preds) = self.build_solver(domain, program)?;
        if let Some((rec, em)) = spans.as_mut() {
            em.exit(rec);
            em.enter(rec, "analysis", None);
        }
        let preprocess = parse_time + timer.lap();

        // Analysis: seed and run to fixpoint.
        if entries.is_empty() {
            for &(name, arity) in preds.keys() {
                let f = gp(name, arity);
                let top = solver.domain.top(arity);
                solver.demand(f, top, None);
            }
        } else {
            for e in entries {
                let arity = e.ground_args.len();
                let f = gp(tablog_term::intern(&e.name), arity);
                let mut cp = solver.domain.top(arity);
                for (i, &g) in e.ground_args.iter().enumerate() {
                    if g {
                        cp = solver.domain.constrain_value(&cp, i, true);
                    }
                }
                solver.demand(f, cp, None);
            }
        }
        solver.run()?;
        if let Some((rec, em)) = spans.as_mut() {
            em.exit(rec);
            em.enter(rec, "collection", None);
        }
        let analysis = timer.lap();

        // Collection: merge results per predicate, exporting the joined
        // value as an enumerative truth table so `DirectGroundness` has
        // one canonical output form regardless of backend.
        let mut out = BTreeMap::new();
        for &(name, arity) in preds.keys() {
            let f = gp(name, arity);
            let matching: Vec<D::Value> = solver
                .results
                .iter()
                .filter(|(k, _)| k.0 == f)
                .map(|(_, r)| r.clone())
                .collect();
            if matching.is_empty() {
                continue; // unreachable from the entries
            }
            let mut merged = solver.domain.bottom(arity);
            for r in &matching {
                merged = solver.domain.join(&merged, r);
            }
            let prop = solver.domain.to_table(&merged);
            let definitely_ground = (0..arity).map(|i| prop.definitely(i)).collect();
            out.insert(
                (sym_name(name), arity),
                DirectGroundness {
                    name: sym_name(name),
                    arity,
                    prop,
                    definitely_ground,
                },
            );
        }
        if let Some((rec, em)) = spans.as_mut() {
            em.exit(rec);
        }
        let collection = timer.lap();

        let metrics = solver.profile.take().map(|mut stats| {
            // Every seeded pair reached fixpoint once the worklist drained.
            for (f, _) in solver.results.keys() {
                stats.entry(*f).or_default().completed += 1;
            }
            let mut rows: Vec<(String, PredStats)> =
                stats.iter().map(|(f, s)| (f.to_string(), *s)).collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            MetricsReport {
                preds: rows,
                phases: vec![
                    ("preprocess".to_string(), preprocess),
                    ("analysis".to_string(), analysis),
                    ("collection".to_string(), collection),
                ],
                options: vec![
                    ("analyzer".to_string(), "direct".to_string()),
                    ("domain".to_string(), self.domain.name().to_string()),
                ],
                spans: spans
                    .as_ref()
                    .map(|(rec, _)| rec.snapshot())
                    .unwrap_or_default(),
                engine: None,
            }
        });
        let domain_stats = solver.domain.stats();
        Ok(DirectReport {
            preds: out,
            timings: PhaseTimings {
                preprocess,
                analysis,
                collection,
            },
            pairs: solver.results.len(),
            iterations: solver.iterations,
            metrics,
            domain: self.domain,
            domain_bytes: domain_stats.bytes,
            bdd_nodes: domain_stats.nodes,
        })
    }
}

fn gp(name: tablog_term::Sym, arity: usize) -> Functor {
    Functor {
        name: tablog_term::intern(&format!("{GP_PREFIX}{}", sym_name(name))),
        arity,
    }
}

fn lower_clause(r: &tablog_magic::Rule) -> Result<AbsClause, AnalysisError> {
    let mut ids: HashMap<tablog_term::Var, usize> = HashMap::new();
    let mut id_of = |t: &Term| -> Result<usize, AnalysisError> {
        match t {
            Term::Var(v) => {
                let n = ids.len();
                Ok(*ids.entry(*v).or_insert(n))
            }
            other => Err(AnalysisError::Unsupported(format!(
                "non-variable argument {other} in abstract clause"
            ))),
        }
    };
    let head_vars: Vec<usize> = r
        .head
        .args()
        .iter()
        .map(&mut id_of)
        .collect::<Result<_, _>>()?;
    let mut goals = Vec::new();
    for lit in &r.body {
        let f = lit
            .functor()
            .ok_or_else(|| AnalysisError::Unsupported(format!("bad abstract literal {lit}")))?;
        let name = sym_name(f.name);
        if name == "$iff" {
            let x = id_of(&lit.args()[0])?;
            let ys: Vec<usize> = lit.args()[1..]
                .iter()
                .map(&mut id_of)
                .collect::<Result<_, _>>()?;
            goals.push(AbsGoal::Iff(x, ys));
        } else if name.starts_with(GP_PREFIX) {
            let args: Vec<usize> = lit
                .args()
                .iter()
                .map(&mut id_of)
                .collect::<Result<_, _>>()?;
            goals.push(AbsGoal::Call(f, args));
        } else {
            return Err(AnalysisError::Unsupported(format!(
                "unexpected literal {lit} in abstract clause"
            )));
        }
    }
    let mut last_use = vec![0usize; ids.len()];
    for (i, g) in goals.iter().enumerate() {
        let mentioned: Vec<usize> = match g {
            AbsGoal::Iff(x, ys) => {
                let mut m = vec![*x];
                m.extend_from_slice(ys);
                m
            }
            AbsGoal::Call(_, args) => args.clone(),
        };
        for v in mentioned {
            last_use[v] = i;
        }
    }
    Ok(AbsClause {
        head_vars,
        goals,
        last_use,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundness::GroundnessAnalyzer;

    const APPEND: &str = "
        app([], Ys, Ys).
        app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    ";

    #[test]
    fn append_formula_matches_tabled_engine() {
        let direct = DirectAnalyzer::new().analyze_source(APPEND).unwrap();
        let tabled = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
        let d = direct.output_groundness("app", 3).unwrap();
        let t = tabled.output_groundness("app", 3).unwrap();
        assert_eq!(d.prop, t.prop);
        assert_eq!(d.definitely_ground, t.definitely_ground);
    }

    #[test]
    fn direct_handles_facts_and_chains() {
        let src = "p(a). q(X) :- p(X). r(X, Y) :- q(X), Y = f(X).";
        let direct = DirectAnalyzer::new().analyze_source(src).unwrap();
        assert_eq!(
            direct.output_groundness("r", 2).unwrap().definitely_ground,
            vec![true, true]
        );
    }

    #[test]
    fn goal_directed_restricts_reachability() {
        let src = "
            reached(X) :- helper(X).
            helper(a).
            island(b).
        ";
        let program = parse_program(src).unwrap();
        let entries = [EntryPoint::new("reached", &[false])];
        let report = DirectAnalyzer::new()
            .analyze_with_entries(&program, &entries)
            .unwrap();
        assert!(report.output_groundness("reached", 1).is_some());
        assert!(report.output_groundness("island", 1).is_none());
    }

    #[test]
    fn entry_groundness_matches_tabled() {
        let src = "
            qs([], []).
            qs([X|Xs], S) :- qs(Xs, S0), ins(X, S0, S).
            ins(X, [], [X]).
            ins(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
            ins(X, [Y|Ys], [Y|Zs]) :- X > Y, ins(X, Ys, Zs).
        ";
        let program = parse_program(src).unwrap();
        let entries = [EntryPoint::parse("qs(g, f)").unwrap()];
        let direct = DirectAnalyzer::new()
            .analyze_with_entries(&program, &entries)
            .unwrap();
        let tabled = GroundnessAnalyzer::new()
            .analyze_with_entries(&program, &entries)
            .unwrap();
        for p in ["qs", "ins"] {
            let arity = if p == "qs" { 2 } else { 3 };
            let d = direct.output_groundness(p, arity).unwrap();
            let t = tabled.output_groundness(p, arity).unwrap();
            assert_eq!(d.definitely_ground, t.definitely_ground, "{p}");
        }
    }

    #[test]
    fn recursion_converges() {
        let src = "
            even(0).
            even(s(X)) :- odd(X).
            odd(s(X)) :- even(X).
        ";
        let report = DirectAnalyzer::new().analyze_source(src).unwrap();
        assert_eq!(
            report
                .output_groundness("even", 1)
                .unwrap()
                .definitely_ground,
            vec![true]
        );
        assert!(report.iterations > 1);
    }

    #[test]
    fn explain_reports_clause_contributions() {
        let program = parse_program(APPEND).unwrap();
        let ex = DirectAnalyzer::new()
            .explain(&program, "app(g, g, f)")
            .unwrap();
        assert_eq!(ex.name, "app");
        assert_eq!(ex.arity, 3);
        assert_eq!(ex.clauses.len(), 2);
        assert!(!ex.is_empty());
        // The fixpoint rows are covered by the clause contributions.
        for r in &ex.rows {
            assert!(
                ex.clauses.iter().any(|c| c.rows.contains(r)),
                "row {r:?} supported by no clause"
            );
        }
        let text = ex.render_text();
        assert!(text.contains("app/3 fixpoint rows:"));
        assert!(text.contains("clause #0"));
        assert!(tablog_trace::json::parse(&ex.to_json()).is_ok());
    }

    #[test]
    fn explain_rejects_unknown_predicate() {
        let program = parse_program(APPEND).unwrap();
        assert!(DirectAnalyzer::new().explain(&program, "nope(g)").is_err());
    }

    #[test]
    fn stats_are_reported() {
        let report = DirectAnalyzer::new().analyze_source(APPEND).unwrap();
        assert!(report.pairs >= 1);
        assert!(report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn bdd_backend_matches_table_backend() {
        let src = "
            qs([], []).
            qs([X|Xs], S) :- qs(Xs, S0), ins(X, S0, S).
            ins(X, [], [X]).
            ins(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
            ins(X, [Y|Ys], [Y|Zs]) :- X > Y, ins(X, Ys, Zs).
        ";
        let table = DirectAnalyzer::new().analyze_source(src).unwrap();
        let bdd = DirectAnalyzer {
            domain: DomainKind::Bdd,
            ..DirectAnalyzer::new()
        }
        .analyze_source(src)
        .unwrap();
        for d in table.predicates() {
            let b = bdd.output_groundness(&d.name, d.arity).unwrap();
            assert_eq!(d.prop, b.prop, "{}/{}", d.name, d.arity);
            assert_eq!(d.definitely_ground, b.definitely_ground);
        }
        assert_eq!(table.domain, DomainKind::Table);
        assert_eq!(bdd.domain, DomainKind::Bdd);
        assert_eq!((table.bdd_nodes, table.domain_bytes), (0, 0));
        assert!(bdd.bdd_nodes > 0);
        assert!(bdd.domain_bytes > 0);
    }

    #[test]
    fn bdd_explain_matches_table_explain() {
        let program = parse_program(APPEND).unwrap();
        let t = DirectAnalyzer::new()
            .explain(&program, "app(g, g, f)")
            .unwrap();
        let b = DirectAnalyzer {
            domain: DomainKind::Bdd,
            ..DirectAnalyzer::new()
        }
        .explain(&program, "app(g, g, f)")
        .unwrap();
        assert_eq!(t.rows, b.rows);
        assert_eq!(t.clauses.len(), b.clauses.len());
        for (tc, bc) in t.clauses.iter().zip(&b.clauses) {
            assert_eq!((tc.clause_index, &tc.rows), (bc.clause_index, &bc.rows));
        }
    }

    #[test]
    fn metrics_record_the_domain_backend() {
        let analyzer = DirectAnalyzer {
            profile: true,
            domain: DomainKind::Bdd,
            ..DirectAnalyzer::new()
        };
        let report = analyzer.analyze_source(APPEND).unwrap();
        let metrics = report.metrics.expect("profiled");
        assert!(metrics
            .options
            .iter()
            .any(|(k, v)| k == "domain" && v == "bdd"));
    }
}
