//! Declarative program analyses on a general-purpose tabled logic engine —
//! the core of the PLDI'96 reproduction.
//!
//! Dawson, Ramakrishnan & Warren's case study demonstrates that program
//! analyses *formulated as logic programs* become practical when evaluated
//! on a complete tabled engine (XSB). This crate implements their three
//! analyses over [`tablog_engine`]:
//!
//! * [`groundness`] — Prop-domain groundness analysis of logic programs
//!   (the paper's Figure 1 transformation, Tables 1, 2 and 4): a source
//!   program `P` is transformed into an abstract program `P♯` whose minimal
//!   model is the groundness behaviour of `P`, with boolean formulae
//!   represented enumeratively by their truth tables.
//! * [`strictness`] — demand-propagation strictness analysis of lazy
//!   functional programs (Figure 3, Table 3), over the demand constants
//!   `e` (normal form), `d` (head normal form) and `n` (no demand — an
//!   unbound variable in answers).
//! * [`depthk`] — the non-enumerative depth-k term abstraction of Section 5
//!   (Table 4), built on the engine's call-abstraction and answer-widening
//!   hooks with meta-level abstract unification.
//!
//! Two comparison systems accompany them:
//!
//! * [`direct`] — a hand-coded, special-purpose Prop groundness analyzer
//!   (goal-directed fixpoint over bitset truth tables), standing in for
//!   GAIA in the paper's Table 2 comparison.
//! * the magic-sets bottom-up route (crate `tablog-magic`), standing in for
//!   Coral (Section 7).
//!
//! The [`prop`] module holds the shared truth-table representation;
//! [`pipeline`] provides the preprocessing / analysis / collection phase
//! timing that the paper's tables report.
//!
//! # Example: groundness of `append`
//!
//! ```
//! use tablog_core::groundness::GroundnessAnalyzer;
//!
//! let src = "app([], Ys, Ys).
//!            app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).";
//! let report = GroundnessAnalyzer::new().analyze_source(src)?;
//! let g = report.output_groundness("app", 3).unwrap();
//! // append's output groundness is the formula (X ∧ Y) ⇔ Z:
//! // no argument is ground in every answer…
//! assert_eq!(g.definitely_ground, vec![false, false, false]);
//! // …but the success set is exactly the 4 rows of the truth table.
//! assert_eq!(g.success_rows.len(), 4);
//! # Ok::<(), tablog_core::AnalysisError>(())
//! ```

pub mod depthk;
pub mod direct;
pub mod explain;
pub mod groundness;
pub mod modes;
pub mod parallel;
pub mod pipeline;
pub mod prop;
pub mod strictness;
pub mod types;

mod error;
mod profile;

pub use error::AnalysisError;
pub use explain::AnalysisExplanation;
pub use parallel::{analyze_many, parallel_map};
pub use pipeline::{PhaseTimings, Timer};
