//! Shared profiling plumbing: hooking a [`MetricsRegistry`] into an
//! analyzer's engine run and freezing it into the report's
//! [`MetricsReport`].
//!
//! Every engine-backed analyzer follows the same recipe: when its
//! `profile` flag is set, install a fresh registry as (one of) the trace
//! sinks before constructing the engine, and after the collection phase
//! stamp the three [`PhaseTimings`] fields into the registry and snapshot
//! it. The helpers here keep that recipe in one place.

use crate::pipeline::PhaseTimings;
use std::sync::Arc;
use tablog_engine::EngineOptions;
use tablog_trace::{MetricsRegistry, MetricsReport, MultiSink, TraceSink};

/// Installs a fresh metrics registry as a trace sink on `opts`, preserving
/// any sink the caller configured: an existing sink is fanned out through a
/// [`MultiSink`] so both keep observing every event.
pub(crate) fn install_registry(opts: &mut EngineOptions) -> Arc<MetricsRegistry> {
    let reg = Arc::new(MetricsRegistry::new());
    let sink: Arc<dyn TraceSink> = match opts.trace.take() {
        Some(existing) => Arc::new(MultiSink::new().with(existing).with(reg.clone())),
        None => reg.clone(),
    };
    opts.trace = Some(sink);
    reg
}

/// Stamps the pipeline's phase timings into the registry and freezes it,
/// embedding the engine options in effect so the report is self-describing.
pub(crate) fn finish(
    reg: &MetricsRegistry,
    t: &PhaseTimings,
    options: Vec<(String, String)>,
) -> MetricsReport {
    reg.record_phases(&[
        ("preprocess", t.preprocess),
        ("analysis", t.analysis),
        ("collection", t.collection),
    ]);
    let mut report = reg.snapshot();
    report.options = options;
    report
}
