//! Shared profiling plumbing: hooking a [`MetricsRegistry`] into an
//! analyzer's engine run and freezing it into the report's
//! [`MetricsReport`].
//!
//! Every engine-backed analyzer follows the same recipe: when its
//! `profile` flag is set, install a fresh registry as (one of) the trace
//! sinks before constructing the engine, and after the collection phase
//! stamp the three [`PhaseTimings`] fields into the registry and snapshot
//! it. Since PR 5 the recipe also covers the performance observatory:
//! [`PhaseSpans`] emits analyzer-phase spans into the same sink the engine
//! writes to, and [`engine_snapshot`] stamps the evaluation's global
//! counters into the report. The helpers here keep that recipe in one
//! place.

use crate::pipeline::PhaseTimings;
use std::sync::Arc;
use tablog_engine::{EngineOptions, Evaluation};
use tablog_trace::{
    EngineSnapshot, MetricsRegistry, MetricsReport, MultiSink, SpanEmitter, SpanId, TraceSink,
};

/// Installs a fresh metrics registry as a trace sink on `opts`, preserving
/// any sink the caller configured: an existing sink is fanned out through a
/// [`MultiSink`] so both keep observing every event.
pub(crate) fn install_registry(opts: &mut EngineOptions) -> Arc<MetricsRegistry> {
    let reg = Arc::new(MetricsRegistry::new());
    let sink: Arc<dyn TraceSink> = match opts.trace.take() {
        Some(existing) => Arc::new(MultiSink::new().with(existing).with(reg.clone())),
        None => reg.clone(),
    };
    opts.trace = Some(sink);
    reg
}

/// Analyzer-phase span emission: wraps the engine's trace sink (when span
/// recording is on) so analyzers can bracket their pipeline phases with
/// spans on the same timeline the engine emits into. The span id returned
/// by [`PhaseSpans::enter`] is what analyzers pass to
/// `EngineOptions::parent_span` so the whole evaluation nests under the
/// `"analysis"` phase. Inert — no timestamps, no ids — unless
/// `record_spans` is set *and* a sink is installed.
pub(crate) struct PhaseSpans {
    sink: Option<Arc<dyn TraceSink>>,
    emitter: SpanEmitter,
}

impl PhaseSpans {
    /// Builds the emitter from the options the engine will run under (call
    /// after [`install_registry`] so the registry's recorder sees phases).
    pub(crate) fn from_options(opts: &EngineOptions) -> Self {
        PhaseSpans {
            sink: if opts.record_spans {
                opts.trace.clone()
            } else {
                None
            },
            emitter: SpanEmitter::new(),
        }
    }

    /// Opens a phase span, returning its id for cross-component parenting.
    pub(crate) fn enter(&mut self, name: &str) -> Option<SpanId> {
        self.sink
            .as_ref()
            .map(|s| self.emitter.enter(s.as_ref(), name, None))
    }

    /// Closes the innermost open phase span.
    pub(crate) fn exit(&mut self) {
        if let Some(s) = &self.sink {
            self.emitter.exit(s.as_ref());
        }
    }
}

/// The evaluation's global counters, in report form, stamped with the
/// Prop-domain backend the analysis ran on (so saved reports are
/// self-describing the same way they are for the scheduler).
pub(crate) fn engine_snapshot(
    eval: &Evaluation,
    domain: tablog_domain::DomainKind,
) -> EngineSnapshot {
    let s = eval.stats();
    EngineSnapshot {
        scheduler: eval.scheduler().to_string(),
        domain: domain.name().to_owned(),
        steps: s.steps as u64,
        clause_resolutions: s.clause_resolutions as u64,
        subgoals: s.subgoals as u64,
        answers: s.answers as u64,
        duplicate_answers: s.duplicate_answers as u64,
        table_bytes: s.table_bytes as u64,
    }
}

/// Stamps the pipeline's phase timings into the registry and freezes it,
/// embedding the engine options in effect (so the report is
/// self-describing) and the evaluation's global counters.
pub(crate) fn finish(
    reg: &MetricsRegistry,
    t: &PhaseTimings,
    options: Vec<(String, String)>,
    engine: Option<EngineSnapshot>,
) -> MetricsReport {
    reg.record_phases(&[
        ("preprocess", t.preprocess),
        ("analysis", t.analysis),
        ("collection", t.collection),
    ]);
    let mut report = reg.snapshot();
    report.options = options;
    report.engine = engine;
    report
}
