//! Parallel multi-program analysis.
//!
//! Every engine session owns its term arena ([`tablog_term::TermArena`])
//! and `Engine` is `Send`, so distinct programs can be analyzed on distinct
//! threads with no shared evaluation state — only the process-wide symbol
//! table is shared, and it is lock-protected. The driver here is
//! deliberately dependency-free: a [`std::thread::scope`] worker pool
//! pulling indices off an atomic counter, which is all a suite of a few
//! dozen benchmark programs needs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items` on up to `jobs` worker threads and
/// returns the results in input order.
///
/// `jobs <= 1` (or a single item) runs inline on the calling thread, so
/// sequential and parallel callers share one code path. Workers claim items
/// through an atomic cursor, which keeps long-running items from stalling
/// the queue behind them. If `f` panics on any item the panic propagates to
/// the caller once the scope joins.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every claimed slot is filled before the scope joins")
        })
        .collect()
}

/// Analyzes many programs concurrently: the multi-program driver behind
/// `tablog --jobs N` and the parallel `paper_tables` suite run.
///
/// `analyze` is invoked once per program, on whichever worker thread claims
/// it; each invocation must build its own engine session (analyzers already
/// do — every `analyze_*` call constructs a fresh `Engine`, whose arena
/// lives and dies with that run). Results come back in input order, so
/// parallel output is byte-comparable with a sequential run.
pub fn analyze_many<T, R, F>(jobs: usize, programs: &[T], analyze: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(jobs, programs, analyze)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depthk::DepthKAnalyzer;
    use crate::groundness::GroundnessAnalyzer;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let got = parallel_map(8, &items, |&i| i * 2);
        assert_eq!(got, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let items = [1, 2, 3];
        let got = parallel_map(1, &items, |&i| i + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        assert!(parallel_map(4, &items, |_| 0).is_empty());
    }

    const PROGRAMS: [&str; 4] = [
        "app([], Ys, Ys). app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).",
        "rev([], []). rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
         app([], Ys, Ys). app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).",
        "p(a). q(X) :- p(X). r(X, Y) :- q(X), Y = f(X).",
        "len([], 0). len([_|T], N) :- len(T, M), N is M + 1.",
    ];

    fn groundness_fingerprint(report: &crate::groundness::GroundnessReport) -> Vec<String> {
        report
            .predicates()
            .map(|p| format!("{}/{} {:?}", p.name, p.arity, p.definitely_ground))
            .collect()
    }

    /// ≥4 engines running concurrently on distinct programs reach exactly
    /// the results of a sequential run — the tentpole's isolation claim.
    #[test]
    fn concurrent_engines_match_sequential_results() {
        let an = GroundnessAnalyzer::new();
        let sequential: Vec<Vec<String>> = PROGRAMS
            .iter()
            .map(|src| groundness_fingerprint(&an.analyze_source(src).unwrap()))
            .collect();
        let parallel: Vec<Vec<String>> = analyze_many(4, &PROGRAMS, |src| {
            groundness_fingerprint(&GroundnessAnalyzer::new().analyze_source(src).unwrap())
        });
        assert_eq!(sequential, parallel);

        // Same property for the hook-driven depth-k analyzer, whose
        // truncation hooks mutate the session arena from worker threads.
        let dk_seq: Vec<usize> = PROGRAMS
            .iter()
            .map(|src| {
                DepthKAnalyzer::new(2)
                    .analyze_source(src)
                    .unwrap()
                    .predicates()
                    .map(|p| p.answers.len())
                    .sum()
            })
            .collect();
        let dk_par: Vec<usize> = analyze_many(4, &PROGRAMS, |src| {
            DepthKAnalyzer::new(2)
                .analyze_source(src)
                .unwrap()
                .predicates()
                .map(|p| p.answers.len())
                .sum()
        });
        assert_eq!(dk_seq, dk_par);
    }

    /// Regression test for the PR 3 cross-run leak: evaluation terms live
    /// in per-session arenas now, so repeated analyses must not grow the
    /// process-global compat arena.
    #[test]
    fn repeated_analyses_do_not_grow_the_global_arena() {
        let an = GroundnessAnalyzer::new();
        // Warm up once: symbol interning and any compat-arena use by
        // analyzer setup happen on the first run.
        an.analyze_source(PROGRAMS[0]).unwrap();
        let before = tablog_term::arena_stats();
        for _ in 0..5 {
            for src in &PROGRAMS {
                an.analyze_source(src).unwrap();
            }
        }
        let after = tablog_term::arena_stats();
        assert_eq!(
            before.nodes, after.nodes,
            "global arena grew across runs: {before:?} -> {after:?}"
        );
        assert_eq!(before.interned_bytes, after.interned_bytes);
    }
}
