//! Mode inference for logic programs, derived from groundness analysis.
//!
//! The paper's opening motivation cites Debray & Warren's automatic mode
//! inference ([13, 14]): compilers for logic languages want to know, per
//! predicate argument, whether it is *input* (ground at call) and whether
//! it is *output* (ground on success). Both are direct readings of the
//! goal-directed Prop analysis: tabling records every call pattern (input
//! modes for free, Section 3.1), and the answer tables give success
//! groundness (output modes). This module packages that reading into the
//! classic `p(+, -, ?)` mode signatures.

use crate::error::AnalysisError;
use crate::groundness::{EntryPoint, GroundnessAnalyzer, GroundnessReport};
use std::collections::BTreeMap;
use tablog_syntax::Program;

/// The mode of one argument position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// `+` — ground at every call.
    Input,
    /// `-` — not necessarily ground at call, but ground on every success.
    Output,
    /// `?` — neither guaranteed.
    Unknown,
}

impl Mode {
    /// The classic one-character spelling.
    pub fn symbol(self) -> char {
        match self {
            Mode::Input => '+',
            Mode::Output => '-',
            Mode::Unknown => '?',
        }
    }
}

/// Inferred modes for one predicate.
#[derive(Clone, Debug)]
pub struct PredModes {
    /// Predicate name.
    pub name: String,
    /// Per-argument modes.
    pub modes: Vec<Mode>,
}

impl PredModes {
    /// Renders like `qsort(+, -)`.
    pub fn render(&self) -> String {
        let args: Vec<String> = self.modes.iter().map(|m| m.symbol().to_string()).collect();
        if args.is_empty() {
            self.name.clone()
        } else {
            format!("{}({})", self.name, args.join(", "))
        }
    }
}

/// The result of mode inference.
#[derive(Clone, Debug)]
pub struct ModeReport {
    preds: BTreeMap<(String, usize), PredModes>,
}

impl ModeReport {
    /// Modes of one predicate.
    pub fn modes(&self, name: &str, arity: usize) -> Option<&PredModes> {
        self.preds.get(&(name.to_owned(), arity))
    }

    /// All predicates reachable from the entry points, sorted by name.
    pub fn predicates(&self) -> impl Iterator<Item = &PredModes> {
        self.preds.values()
    }
}

/// Infers modes for every predicate reachable from `entries`, by running
/// the goal-directed groundness analysis and reading its call and answer
/// tables.
///
/// # Errors
///
/// Propagates parse/engine errors from the underlying analysis.
pub fn infer_modes(program: &Program, entries: &[EntryPoint]) -> Result<ModeReport, AnalysisError> {
    let report = GroundnessAnalyzer::new().analyze_with_entries(program, entries)?;
    Ok(modes_from_groundness(&report))
}

/// Derives mode signatures from an existing groundness report.
pub fn modes_from_groundness(report: &GroundnessReport) -> ModeReport {
    let mut preds = BTreeMap::new();
    for p in report.predicates() {
        if p.call_patterns.is_empty() {
            continue; // unreachable from the entries
        }
        let modes = (0..p.arity)
            .map(|i| {
                let input = p.call_patterns.iter().all(|c| c[i] == Some(true));
                if input {
                    Mode::Input
                } else if p.definitely_ground[i] {
                    Mode::Output
                } else {
                    Mode::Unknown
                }
            })
            .collect();
        preds.insert(
            (p.name.clone(), p.arity),
            PredModes {
                name: p.name.clone(),
                modes,
            },
        );
    }
    ModeReport { preds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_syntax::parse_program;

    fn modes_of(src: &str, entry: &str) -> ModeReport {
        let program = parse_program(src).unwrap();
        let e = EntryPoint::parse(entry).unwrap();
        infer_modes(&program, &[e]).unwrap()
    }

    const QSORT: &str = "
        qsort([], []).
        qsort([X|Xs], S) :-
            part(Xs, X, L, G), qsort(L, SL), qsort(G, SG), app(SL, [X|SG], S).
        part([], _, [], []).
        part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
        part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
        app([], Y, Y).
        app([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).
    ";

    #[test]
    fn qsort_has_the_classic_modes() {
        let r = modes_of(QSORT, "qsort(g, f)");
        assert_eq!(r.modes("qsort", 2).unwrap().render(), "qsort(+, -)");
        assert_eq!(r.modes("part", 4).unwrap().render(), "part(+, +, -, -)");
    }

    #[test]
    fn append_inside_qsort_is_input_input_output() {
        let r = modes_of(QSORT, "qsort(g, f)");
        // app is only called with both inputs ground here.
        assert_eq!(r.modes("app", 3).unwrap().render(), "app(+, +, -)");
    }

    #[test]
    fn open_entry_gives_unknown_inputs() {
        let r = modes_of(QSORT, "qsort(f, f)");
        let q = r.modes("qsort", 2).unwrap();
        assert_eq!(q.modes[0], Mode::Unknown); // not ground at call…
        assert_eq!(q.modes[1], Mode::Unknown); // …so nothing is guaranteed
    }

    #[test]
    fn outputs_require_definite_groundness() {
        let src = "mk(X, f(X)).";
        let r = modes_of(src, "mk(f, f)");
        // Called open: X unknown; second arg not ground either.
        assert_eq!(r.modes("mk", 2).unwrap().render(), "mk(?, ?)");
        let r = modes_of(src, "mk(g, f)");
        assert_eq!(r.modes("mk", 2).unwrap().render(), "mk(+, -)");
    }

    #[test]
    fn unreachable_predicates_are_omitted() {
        let src = "reach(a). island(b).";
        let r = modes_of(src, "reach(f)");
        assert!(r.modes("reach", 1).is_some());
        assert!(r.modes("island", 1).is_none());
    }

    #[test]
    fn suite_entry_modes_are_sane() {
        for b in tablog_suite::logic_benchmarks() {
            let program = parse_program(b.source).unwrap();
            let entry = EntryPoint::parse(b.entry).unwrap();
            let r = infer_modes(&program, std::slice::from_ref(&entry)).unwrap();
            // The entry predicate's ground arguments must come out as input.
            let arity = entry.ground_args.len();
            let m = r.modes(&entry.name, arity).unwrap();
            for (i, &g) in entry.ground_args.iter().enumerate() {
                if g {
                    assert_eq!(m.modes[i], Mode::Input, "{}: {}", b.name, m.render());
                }
            }
        }
    }
}
