//! Analysis errors.

use std::fmt;

/// An error raised while preparing or running an analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// The source program could not be parsed.
    Parse(String),
    /// The underlying engine failed.
    Engine(tablog_engine::EngineError),
    /// The program uses a feature the analysis cannot handle.
    Unsupported(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Parse(m) => write!(f, "parse error: {m}"),
            AnalysisError::Engine(e) => write!(f, "engine error: {e}"),
            AnalysisError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tablog_engine::EngineError> for AnalysisError {
    fn from(e: tablog_engine::EngineError) -> Self {
        AnalysisError::Engine(e)
    }
}

impl From<tablog_syntax::ParseError> for AnalysisError {
    fn from(e: tablog_syntax::ParseError) -> Self {
        AnalysisError::Parse(e.to_string())
    }
}

impl From<tablog_funlang::FunParseError> for AnalysisError {
    fn from(e: tablog_funlang::FunParseError) -> Self {
        AnalysisError::Parse(e.to_string())
    }
}
