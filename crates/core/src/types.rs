//! Hindley–Milner type analysis for the mini functional language — the
//! Section 6.1 extension.
//!
//! The paper observes that a straightforward logical formulation is not
//! limited to finite-domain analyses: Hindley–Milner type inference is the
//! solution of *equality constraints* over type terms, needing only
//! unification **with occur check** — no tabling at all. This module
//! realizes that: types are ordinary [`tablog_term::Term`]s
//! (`int`, `bool`, `list(T)`, `pair(T1,T2)`, user datatypes `d(P1…Pm)`,
//! and type variables), and inference is constraint generation plus
//! [`tablog_term::unify_occurs`] over a [`Bindings`] store.
//!
//! Functions are processed one strongly connected component of the call
//! graph at a time: recursion inside an SCC is monomorphic (the standard
//! HM restriction), while calls to previously inferred functions
//! instantiate a fresh copy of their *type scheme* — polymorphism via the
//! same variant-renaming machinery the tables use.

use crate::error::AnalysisError;
use std::collections::{BTreeMap, HashMap, HashSet};
use tablog_funlang::{Equation, Expr, FunProgram, Pattern, PrimOp};
use tablog_term::{atom, canonicalize, structure, unify_occurs, Bindings, CanonicalTerm, Term};

/// An inferred type scheme for one function: argument types then the
/// result type, with canonical type variables (`A`, `B`, … when rendered).
#[derive(Clone, Debug)]
pub struct TypeScheme {
    /// Function name.
    pub name: String,
    /// Canonical `[arg1, …, argn, result]` type tuple.
    scheme: CanonicalTerm,
}

impl TypeScheme {
    /// Argument types (with canonical variables).
    pub fn args(&self) -> Vec<Term> {
        let mut ts = self.scheme.terms();
        ts.pop();
        ts
    }

    /// Result type.
    pub fn result(&self) -> Term {
        self.scheme.terms().pop().expect("scheme holds result")
    }

    /// Renders like `ap : (list(A), list(A)) -> list(A)`.
    pub fn render(&self) -> String {
        let mut w = tablog_syntax::TermWriter::new();
        let args: Vec<String> = self.args().iter().map(|t| w.write(t)).collect();
        format!(
            "{} : ({}) -> {}",
            self.name,
            args.join(", "),
            w.write(&self.result())
        )
    }
}

/// The result of running type analysis over a program.
#[derive(Clone, Debug)]
pub struct TypeReport {
    schemes: BTreeMap<String, TypeScheme>,
}

impl TypeReport {
    /// The scheme inferred for `f`.
    pub fn scheme(&self, f: &str) -> Option<&TypeScheme> {
        self.schemes.get(f)
    }

    /// All schemes, sorted by function name.
    pub fn schemes(&self) -> impl Iterator<Item = &TypeScheme> {
        self.schemes.values()
    }
}

/// Runs Hindley–Milner inference over a parsed program.
///
/// # Errors
///
/// Returns [`AnalysisError::Unsupported`] with a type-error message when
/// the program's constraints are unsatisfiable (including occur-check
/// failures on recursive types).
pub fn infer_types(prog: &FunProgram) -> Result<TypeReport, AnalysisError> {
    let mut inf = Inferencer::new(prog);
    for scc in call_graph_sccs(prog) {
        inf.infer_scc(&scc)?;
    }
    Ok(TypeReport {
        schemes: inf.schemes,
    })
}

struct Inferencer<'p> {
    prog: &'p FunProgram,
    schemes: BTreeMap<String, TypeScheme>,
}

impl<'p> Inferencer<'p> {
    fn new(prog: &'p FunProgram) -> Self {
        Inferencer {
            prog,
            schemes: BTreeMap::new(),
        }
    }

    fn infer_scc(&mut self, scc: &[String]) -> Result<(), AnalysisError> {
        let mut b = Bindings::new();
        // Monomorphic assumption for every function in the SCC.
        let mut local: HashMap<String, Vec<Term>> = HashMap::new();
        for f in scc {
            let arity = self.prog.arity(f).expect("function exists");
            let vars: Vec<Term> = (0..=arity).map(|_| Term::Var(b.fresh_var())).collect();
            local.insert(f.clone(), vars);
        }
        for f in scc {
            for eq in self.prog.equations_of(f) {
                self.infer_equation(eq, &local, &mut b)?;
            }
        }
        // Generalize: canonicalize each assumption into a scheme.
        for f in scc {
            let tuple = &local[f];
            let scheme = canonicalize(&b, tuple);
            self.schemes.insert(
                f.clone(),
                TypeScheme {
                    name: f.clone(),
                    scheme,
                },
            );
        }
        Ok(())
    }

    fn infer_equation(
        &mut self,
        eq: &Equation,
        local: &HashMap<String, Vec<Term>>,
        b: &mut Bindings,
    ) -> Result<(), AnalysisError> {
        let assumption = &local[&eq.fname];
        let mut env: HashMap<String, Term> = HashMap::new();
        for (i, p) in eq.lhs.iter().enumerate() {
            let tp = self.pattern_type(p, &mut env, b)?;
            self.eq_types(
                &assumption[i],
                &tp,
                b,
                &format!("{}: argument {}", eq.fname, i + 1),
            )?;
        }
        let tr = self.expr_type(&eq.rhs, &env, local, b)?;
        self.eq_types(
            assumption.last().expect("result slot"),
            &tr,
            b,
            &format!("{}: result", eq.fname),
        )
    }

    fn eq_types(
        &self,
        t1: &Term,
        t2: &Term,
        b: &mut Bindings,
        context: &str,
    ) -> Result<(), AnalysisError> {
        if unify_occurs(b, t1, t2) {
            Ok(())
        } else {
            let mut w = tablog_syntax::TermWriter::new();
            Err(AnalysisError::Unsupported(format!(
                "type error at {context}: cannot unify {} with {}",
                w.write(&b.resolve(t1)),
                w.write(&b.resolve(t2))
            )))
        }
    }

    fn pattern_type(
        &mut self,
        p: &Pattern,
        env: &mut HashMap<String, Term>,
        b: &mut Bindings,
    ) -> Result<Term, AnalysisError> {
        match p {
            Pattern::Var(x) => {
                let t = Term::Var(b.fresh_var());
                env.insert(x.clone(), t.clone());
                Ok(t)
            }
            Pattern::Int(_) => Ok(atom("int")),
            Pattern::Ctor(c, ps) => {
                let field_types: Vec<Term> = ps
                    .iter()
                    .map(|q| self.pattern_type(q, env, b))
                    .collect::<Result<_, _>>()?;
                self.ctor_result_type(c, &field_types, b)
            }
        }
    }

    fn expr_type(
        &mut self,
        e: &Expr,
        env: &HashMap<String, Term>,
        local: &HashMap<String, Vec<Term>>,
        b: &mut Bindings,
    ) -> Result<Term, AnalysisError> {
        match e {
            Expr::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| AnalysisError::Unsupported(format!("unbound variable {x}"))),
            Expr::Int(_) => Ok(atom("int")),
            Expr::Ctor(c, args) => {
                let arg_types: Vec<Term> = args
                    .iter()
                    .map(|a| self.expr_type(a, env, local, b))
                    .collect::<Result<_, _>>()?;
                self.ctor_result_type(c, &arg_types, b)
            }
            Expr::App(f, args) => {
                let arg_types: Vec<Term> = args
                    .iter()
                    .map(|a| self.expr_type(a, env, local, b))
                    .collect::<Result<_, _>>()?;
                // Same SCC: use the shared monomorphic assumption.
                // Earlier SCC: instantiate the generalized scheme fresh.
                let sig: Vec<Term> = if let Some(tuple) = local.get(f) {
                    tuple.clone()
                } else if let Some(s) = self.schemes.get(f) {
                    s.scheme.instantiate(b)
                } else {
                    return Err(AnalysisError::Unsupported(format!(
                        "call to unknown function {f}/{}",
                        args.len()
                    )));
                };
                for (i, (want, got)) in sig.iter().zip(&arg_types).enumerate() {
                    self.eq_types(want, got, b, &format!("call to {f}, argument {}", i + 1))?;
                }
                Ok(sig.last().expect("result slot").clone())
            }
            Expr::Prim(op, x, y) => {
                let tx = self.expr_type(x, env, local, b)?;
                let ty = self.expr_type(y, env, local, b)?;
                self.eq_types(&tx, &atom("int"), b, &format!("operand of {}", op.symbol()))?;
                self.eq_types(&ty, &atom("int"), b, &format!("operand of {}", op.symbol()))?;
                Ok(match op {
                    PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div => atom("int"),
                    _ => atom("bool"),
                })
            }
            Expr::If(c, t, f) => {
                let tc = self.expr_type(c, env, local, b)?;
                self.eq_types(&tc, &atom("bool"), b, "if condition")?;
                let tt = self.expr_type(t, env, local, b)?;
                let tf = self.expr_type(f, env, local, b)?;
                self.eq_types(&tt, &tf, b, "if branches")?;
                Ok(tt)
            }
        }
    }

    /// The result type of applying constructor `c` to fields of the given
    /// types; unifies the fields into the constructor's signature.
    fn ctor_result_type(
        &mut self,
        c: &str,
        fields: &[Term],
        b: &mut Bindings,
    ) -> Result<Term, AnalysisError> {
        match c {
            "true" | "false" => Ok(atom("bool")),
            "zero" => Ok(atom("nat")),
            "succ" => {
                self.eq_types(&fields[0], &atom("nat"), b, "succ field")?;
                Ok(atom("nat"))
            }
            "nil" => {
                let elem = Term::Var(b.fresh_var());
                Ok(structure("list", vec![elem]))
            }
            "cons" => {
                let list = structure("list", vec![fields[0].clone()]);
                self.eq_types(&fields[1], &list, b, "cons tail")?;
                Ok(list)
            }
            "pair" => Ok(structure(
                "pair",
                vec![fields[0].clone(), fields[1].clone()],
            )),
            "triple" => Ok(structure(
                "triple",
                vec![fields[0].clone(), fields[1].clone(), fields[2].clone()],
            )),
            "leaf" => {
                let elem = Term::Var(b.fresh_var());
                Ok(structure("tree", vec![elem]))
            }
            "node" => {
                // node(left, value, right).
                let elem = fields[1].clone();
                let tree = structure("tree", vec![elem]);
                self.eq_types(&fields[0], &tree, b, "node left subtree")?;
                self.eq_types(&fields[2], &tree, b, "node right subtree")?;
                Ok(tree)
            }
            _ => {
                // User-declared constructor: all constructors of one `data`
                // declaration share a nominal type; their fields (declared
                // only by arity) are dynamically typed — each use gets
                // unconstrained fresh field types, so mixing datatypes is
                // rejected while field contents stay unchecked.
                let dname = self.prog.datatype_of(c).ok_or_else(|| {
                    AnalysisError::Unsupported(format!("unknown constructor {c}"))
                })?;
                let _ = fields;
                Ok(atom(&format!("data_{dname}")))
            }
        }
    }
}

/// Strongly connected components of the call graph, in reverse
/// topological order (callees before callers) — Tarjan's algorithm.
fn call_graph_sccs(prog: &FunProgram) -> Vec<Vec<String>> {
    let funs: Vec<String> = prog.functions.keys().cloned().collect();
    let index_of: HashMap<&String, usize> = funs.iter().enumerate().map(|(i, f)| (f, i)).collect();
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); funs.len()];
    for eq in &prog.equations {
        let from = index_of[&eq.fname];
        collect_calls(&eq.rhs, &mut |callee| {
            if let Some(&to) = index_of.get(&callee.to_owned()) {
                edges[from].insert(to);
            }
        });
    }

    struct Tarjan<'a> {
        edges: &'a [HashSet<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: usize,
        out: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.counter);
            self.low[v] = self.counter;
            self.counter += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            let succs: Vec<usize> = self.edges[v].iter().copied().collect();
            for w in succs {
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].expect("indexed"));
                }
            }
            if Some(self.low[v]) == self.index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = self.stack.pop().expect("stack nonempty");
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.out.push(comp);
            }
        }
    }
    let n = funs.len();
    let mut t = Tarjan {
        edges: &edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    // Tarjan emits SCCs in reverse topological order already.
    t.out
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| funs[i].clone()).collect())
        .collect()
}

fn collect_calls(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Var(_) | Expr::Int(_) => {}
        Expr::Ctor(_, args) => {
            for a in args {
                collect_calls(a, f);
            }
        }
        Expr::App(name, args) => {
            f(name);
            for a in args {
                collect_calls(a, f);
            }
        }
        Expr::Prim(_, a, b) => {
            collect_calls(a, f);
            collect_calls(b, f);
        }
        Expr::If(c, t, e2) => {
            collect_calls(c, f);
            collect_calls(t, f);
            collect_calls(e2, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_funlang::parse_fun_program;

    fn types(src: &str) -> TypeReport {
        infer_types(&parse_fun_program(src).unwrap()).unwrap()
    }

    #[test]
    fn append_is_polymorphic_list_function() {
        let r = types("ap(nil, ys) = ys; ap(x : xs, ys) = x : ap(xs, ys);");
        assert_eq!(
            r.scheme("ap").unwrap().render(),
            "ap : (list(A), list(A)) -> list(A)"
        );
    }

    #[test]
    fn length_maps_any_list_to_int() {
        let r = types("len(nil) = 0; len(x : xs) = 1 + len(xs);");
        assert_eq!(r.scheme("len").unwrap().render(), "len : (list(A)) -> int");
    }

    #[test]
    fn polymorphic_instantiation_across_functions() {
        let r = types(
            "id(x) = x;
             use_both(n) = pair(id(n + 0), id(nil));",
        );
        assert_eq!(r.scheme("id").unwrap().render(), "id : (A) -> A");
        assert_eq!(
            r.scheme("use_both").unwrap().render(),
            "use_both : (int) -> pair(int,list(A))"
        );
    }

    #[test]
    fn mutual_recursion_is_monomorphic_within_scc() {
        let r = types(
            "evenlen(nil) = true;
             evenlen(x : xs) = oddlen(xs);
             oddlen(nil) = false;
             oddlen(x : xs) = evenlen(xs);",
        );
        let e = r.scheme("evenlen").unwrap();
        assert_eq!(e.render(), "evenlen : (list(A)) -> bool");
    }

    #[test]
    fn if_branches_must_agree() {
        let err = infer_types(&parse_fun_program("f(x) = if x == 0 then 1 else nil;").unwrap())
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(m) if m.contains("if branches")));
    }

    #[test]
    fn arithmetic_on_lists_is_rejected() {
        let err = infer_types(&parse_fun_program("f(x) = nil + 1;").unwrap()).unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(m) if m.contains("operand")));
    }

    #[test]
    fn occur_check_rejects_infinite_types() {
        // x : x would need A = list(A).
        let err = infer_types(&parse_fun_program("f(x) = x : x;").unwrap()).unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)));
    }

    #[test]
    fn user_datatypes_are_parametric() {
        let r = types(
            "data wrap = box(1);
             unbox(box(x)) = x;",
        );
        assert_eq!(
            r.scheme("unbox").unwrap().render(),
            "unbox : (data_wrap) -> A"
        );
    }

    #[test]
    fn trees_with_builtin_node_ctor() {
        let r = types(
            "tsum(leaf) = 0;
             tsum(node(l, v, r)) = tsum(l) + v + tsum(r);",
        );
        assert_eq!(
            r.scheme("tsum").unwrap().render(),
            "tsum : (tree(int)) -> int"
        );
    }

    #[test]
    fn suite_benchmarks_type_check_where_expected() {
        // odprove overloads `true`/`false` as ITE-tree leaves, which strict
        // HM rightly rejects; every other benchmark is well typed.
        for b in tablog_suite::fun_benchmarks() {
            let prog = parse_fun_program(b.source).unwrap();
            let result = infer_types(&prog);
            if b.name == "odprove" {
                assert!(result.is_err(), "odprove should be rejected");
            } else {
                result.unwrap_or_else(|e| panic!("{}: {e}", b.name));
            }
        }
    }
}
