//! End-to-end differential tests for the Prop-domain backends: every suite
//! program, and a stream of randomly generated programs, must produce
//! identical groundness results whether the analysis runs on the
//! enumerative truth-table backend or the BDD backend.
//!
//! This is the whole-analysis counterpart of the per-operation lockstep
//! test in `crates/domain/tests/prop_domain_diff.rs`: here the backends are
//! selected the way users select them ([`EngineOptions::domain`] /
//! [`DirectAnalyzer::domain`]) and compared on the reports the analyses
//! actually return.

use proptest::prelude::*;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{GroundnessAnalyzer, GroundnessReport};
use tablog_domain::DomainKind;

/// Everything observable about one predicate's tabled-analysis result, in a
/// canonical order.
type PredFp = (
    String,
    usize,
    Vec<Vec<Option<bool>>>,
    Vec<bool>,
    Vec<Vec<bool>>,
    Vec<Vec<Option<bool>>>,
);

fn tabled_fingerprint(report: &GroundnessReport) -> Vec<PredFp> {
    report
        .predicates()
        .map(|p| {
            let mut success = p.success_rows.clone();
            success.sort();
            let mut calls = p.call_patterns.clone();
            calls.sort();
            (
                p.name.clone(),
                p.arity,
                success,
                p.definitely_ground.clone(),
                p.prop.rows(),
                calls,
            )
        })
        .collect()
}

fn run_tabled(src: &str, domain: DomainKind) -> Result<Vec<PredFp>, String> {
    let mut an = GroundnessAnalyzer::new();
    an.options.domain = domain;
    an.analyze_source(src)
        .map(|r| tabled_fingerprint(&r))
        .map_err(|e| e.to_string())
}

fn run_direct(src: &str, domain: DomainKind) -> Result<Vec<String>, String> {
    let mut an = DirectAnalyzer::new();
    an.domain = domain;
    an.analyze_source(src)
        .map(|r| {
            r.predicates()
                .map(|p| {
                    format!(
                        "{}/{} rows{:?} meet{:?}",
                        p.name,
                        p.arity,
                        p.prop.rows(),
                        p.definitely_ground
                    )
                })
                .collect()
        })
        .map_err(|e| e.to_string())
}

/// Both analyzers agree across backends on every Table 1/2 suite program.
#[test]
fn suite_programs_agree_across_backends() {
    for b in tablog_suite::logic_benchmarks() {
        assert_eq!(
            run_tabled(b.source, DomainKind::Table),
            run_tabled(b.source, DomainKind::Bdd),
            "tabled groundness diverged on {}",
            b.name
        );
        assert_eq!(
            run_direct(b.source, DomainKind::Table),
            run_direct(b.source, DomainKind::Bdd),
            "direct groundness diverged on {}",
            b.name
        );
    }
}

/// One randomly generated clause, encoded as indices into fixed pools.
#[derive(Clone, Debug)]
struct RandClause {
    /// Head predicate (index into the predicate pool).
    pred: usize,
    /// Head argument shapes, one per head-arity slot.
    head: Vec<usize>,
    /// Body atoms as `(predicate, arg shapes)`.
    body: Vec<(usize, Vec<usize>)>,
}

const PREDS: [(&str, usize); 3] = [("p", 2), ("q", 2), ("r", 3)];

/// Renders an argument shape: a shared variable, a ground constant, or a
/// compound wrapping a shared variable (so groundness of the argument
/// tracks groundness of the variable).
fn render_arg(shape: usize) -> String {
    match shape % 6 {
        0 => "X".to_string(),
        1 => "Y".to_string(),
        2 => "Z".to_string(),
        3 => "a".to_string(),
        4 => "f(X)".to_string(),
        _ => "g(Y, b)".to_string(),
    }
}

fn render_program(clauses: &[RandClause]) -> String {
    let mut src = String::new();
    // Ground every predicate somewhere so all of them have clauses even
    // when the random clauses only define a subset.
    for (name, arity) in PREDS {
        let args = vec!["a"; arity].join(", ");
        src.push_str(&format!("{name}({args}).\n"));
    }
    for c in clauses {
        let (name, arity) = PREDS[c.pred % PREDS.len()];
        let head_args: Vec<String> = (0..arity)
            .map(|i| render_arg(*c.head.get(i).unwrap_or(&3)))
            .collect();
        src.push_str(&format!("{name}({})", head_args.join(", ")));
        if !c.body.is_empty() {
            let atoms: Vec<String> = c
                .body
                .iter()
                .map(|(p, args)| {
                    let (bn, ba) = PREDS[p % PREDS.len()];
                    let rendered: Vec<String> = (0..ba)
                        .map(|i| render_arg(*args.get(i).unwrap_or(&0)))
                        .collect();
                    format!("{bn}({})", rendered.join(", "))
                })
                .collect();
            src.push_str(&format!(" :- {}", atoms.join(", ")));
        }
        src.push_str(".\n");
    }
    src
}

fn arb_clause() -> impl Strategy<Value = RandClause> {
    (
        0usize..PREDS.len(),
        prop::collection::vec(0usize..6, 3..4),
        prop::collection::vec(
            (0usize..PREDS.len(), prop::collection::vec(0usize..6, 3..4)),
            0..3,
        ),
    )
        .prop_map(|(pred, head, body)| RandClause { pred, head, body })
}

proptest! {
    /// Random programs: whatever each analyzer computes (including an
    /// error), it computes identically under both backends.
    #[test]
    fn random_programs_agree_across_backends(
        clauses in prop::collection::vec(arb_clause(), 1..6)
    ) {
        let src = render_program(&clauses);
        prop_assert_eq!(
            run_tabled(&src, DomainKind::Table),
            run_tabled(&src, DomainKind::Bdd),
            "tabled groundness diverged on:\n{}",
            src
        );
        prop_assert_eq!(
            run_direct(&src, DomainKind::Table),
            run_direct(&src, DomainKind::Bdd),
            "direct groundness diverged on:\n{}",
            src
        );
    }
}
