//! Profiling integration: each analyzer's `profile` flag must yield a
//! `MetricsReport` whose rollups agree with the engine's own statistics.

use std::sync::Arc;
use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::GroundnessAnalyzer;
use tablog_core::strictness::StrictnessAnalyzer;
use tablog_engine::CountingSink;

const APPEND: &str = "
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

#[test]
fn groundness_metrics_match_engine_stats() {
    let mut an = GroundnessAnalyzer::new();
    an.profile = true;
    let report = an.analyze_source(APPEND).unwrap();
    let m = report
        .metrics
        .as_ref()
        .expect("profile=true yields metrics");
    let t = m.totals();
    assert_eq!(t.subgoals, report.stats.subgoals as u64);
    assert_eq!(t.answers, report.stats.answers as u64);
    assert_eq!(t.duplicate_answers, report.stats.duplicate_answers as u64);
    assert_eq!(t.clause_resolutions, report.stats.clause_resolutions as u64);
    assert_eq!(t.table_bytes, report.stats.table_bytes as u64);
    // The abstract predicate has its own row.
    let row = m.pred("gp$app/3").expect("gp$app/3 row");
    assert!(row.subgoals > 0);
    assert!(row.answers > 0);
    let names: Vec<&str> = m.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["preprocess", "analysis", "collection"]);
}

#[test]
fn profile_off_means_no_metrics() {
    let report = GroundnessAnalyzer::new().analyze_source(APPEND).unwrap();
    assert!(report.metrics.is_none());
}

#[test]
fn profiling_composes_with_a_user_trace_sink() {
    let counter = Arc::new(CountingSink::new());
    let mut an = GroundnessAnalyzer::new();
    an.options.trace = Some(counter.clone());
    an.profile = true;
    let report = an.analyze_source(APPEND).unwrap();
    let m = report.metrics.expect("metrics present");
    // Both observers saw the same event stream.
    assert_eq!(counter.count("new_subgoal"), m.totals().subgoals);
    assert_eq!(counter.count("answer_insert"), m.totals().answers);
    assert!(counter.total() > 0);
}

#[test]
fn depthk_metrics_count_abstraction_and_widening() {
    // Unbounded list growth: depth-1 truncation must kick in both on
    // calls (the recursive call's argument deepens) and on answers.
    let src = "
        grow(nil).
        grow(c(X)) :- grow(X).
    ";
    let mut an = DepthKAnalyzer::new(1);
    an.profile = true;
    let report = an.analyze_source(src).unwrap();
    let m = report.metrics.as_ref().expect("metrics present");
    let t = m.totals();
    assert!(
        t.calls_abstracted > 0 || t.answers_widened > 0,
        "depth-1 truncation should fire: {t:?}"
    );
    assert!(t.answers_widened > 0, "widening rewrites deep answers");
    assert_eq!(t.table_bytes, report.stats.table_bytes as u64);
    // The hook events land on the abstract predicate's row.
    let row = m.pred("ak$grow/1").expect("ak$grow/1 row");
    assert!(row.answers_widened > 0);
}

#[test]
fn strictness_metrics_match_engine_stats() {
    let src = "
        ap(nil, ys) = ys;
        ap(x : xs, ys) = x : ap(xs, ys);
    ";
    let mut an = StrictnessAnalyzer::new();
    an.profile = true;
    let report = an.analyze_source(src).unwrap();
    let m = report.metrics.as_ref().expect("metrics present");
    let t = m.totals();
    assert_eq!(t.subgoals, report.stats.subgoals as u64);
    assert_eq!(t.answers, report.stats.answers as u64);
    assert_eq!(t.table_bytes, report.stats.table_bytes as u64);
    assert!(m.pred("sp$ap/3").is_some(), "demand predicate has a row");
}

#[test]
fn direct_metrics_mirror_worklist_counters() {
    let mut an = DirectAnalyzer::new();
    an.profile = true;
    let report = an.analyze_source(APPEND).unwrap();
    let m = report.metrics.as_ref().expect("metrics present");
    let t = m.totals();
    assert_eq!(t.subgoals, report.pairs as u64);
    assert_eq!(t.completed, report.pairs as u64);
    assert!(t.clause_resolutions >= report.iterations as u64);
    let row = m.pred("gp$app/3").expect("gp$app/3 row");
    assert!(row.subgoals >= 1);
}
