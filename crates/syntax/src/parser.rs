//! Operator-precedence parser for Prolog terms, clauses and programs.

use crate::ops::{OpTable, OpType};
use crate::token::{tokenize, Token, TokenError};
use crate::{LIST_CONS, LIST_NIL};
use std::collections::HashMap;
use std::fmt;
use tablog_term::{atom, int, structure, var, Bindings, Term, Var};

/// A parse failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<TokenError> for ParseError {
    fn from(e: TokenError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// A clause read from source: `head :- body` or a fact (empty body).
///
/// Variables are numbered clause-locally from 0; `var_names` records the
/// source name of each named variable.
#[derive(Clone, Debug)]
pub struct ReadClause {
    /// The clause head.
    pub head: Term,
    /// The body goals, with top-level conjunction flattened.
    pub body: Vec<Term>,
    /// Number of distinct variables in the clause.
    pub nvars: usize,
    /// Source names of named variables, in numbering order.
    pub var_names: Vec<(String, Var)>,
}

/// A directive (`:- …`) read from source.
#[derive(Clone, Debug, PartialEq)]
pub enum Directive {
    /// `:- table p/2, q/3.` — mark predicates for tabled evaluation.
    Table(Vec<(String, usize)>),
    /// Any other directive, kept as a term for the embedder to interpret.
    Other(Term),
}

/// A parsed program: clauses plus directives, with the operator table as it
/// stood at end of parse (directives may extend it via `op/3`).
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The program clauses in source order.
    pub clauses: Vec<ReadClause>,
    /// The directives in source order.
    pub directives: Vec<Directive>,
}

impl Program {
    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Names of the predicates marked `:- table`.
    pub fn tabled(&self) -> Vec<(String, usize)> {
        self.directives
            .iter()
            .flat_map(|d| match d {
                Directive::Table(ps) => ps.clone(),
                _ => Vec::new(),
            })
            .collect()
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    ops: &'a OpTable,
    vars: HashMap<String, Var>,
    names: Vec<(String, Var)>,
    next_var: u32,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [Token], ops: &'a OpTable) -> Self {
        Parser {
            toks,
            pos: 0,
            ops,
            vars: HashMap::new(),
            names: Vec::new(),
            next_var: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(ParseError::new(format!("expected {want}, found {t}"))),
            None => Err(ParseError::new(format!(
                "expected {want}, found end of input"
            ))),
        }
    }

    fn fresh(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    fn named_var(&mut self, name: &str) -> Term {
        if name == "_" {
            return var(self.fresh());
        }
        if let Some(&v) = self.vars.get(name) {
            return var(v);
        }
        let v = self.fresh();
        self.vars.insert(name.to_owned(), v);
        self.names.push((name.to_owned(), v));
        var(v)
    }

    fn can_start_term(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Int(_)
                    | Token::Str(_)
                    | Token::Var(_)
                    | Token::Atom(_)
                    | Token::Functor(_)
                    | Token::Open
                    | Token::OpenList
                    | Token::OpenCurly
            )
        )
    }

    /// Parses a term of priority at most `max`.
    fn term(&mut self, max: u32) -> Result<(Term, u32), ParseError> {
        let (mut left, mut lprec) = self.primary(max)?;
        loop {
            let (name, is_comma_or_bar) = match self.peek() {
                Some(Token::Comma) => (",".to_string(), true),
                Some(Token::Bar) => (";".to_string(), true),
                Some(Token::Atom(a)) => (a.clone(), false),
                _ => break,
            };
            if let Some((p, ty)) = self.ops.infix(&name).or(if is_comma_or_bar {
                Some((if name == "," { 1000 } else { 1100 }, OpType::Xfy))
            } else {
                None
            }) {
                let (lmax, rmax) = match ty {
                    OpType::Xfx => (p - 1, p - 1),
                    OpType::Xfy => (p - 1, p),
                    OpType::Yfx => (p, p - 1),
                    _ => unreachable!("infix table holds infix ops"),
                };
                if p <= max && lprec <= lmax {
                    self.bump();
                    let (right, _) = self.term(rmax)?;
                    left = structure(&name, vec![left, right]);
                    lprec = p;
                    continue;
                }
            }
            if !is_comma_or_bar {
                if let Some((p, ty)) = self.ops.postfix(&name) {
                    let lmax = if ty == OpType::Yf { p } else { p - 1 };
                    if p <= max && lprec <= lmax {
                        self.bump();
                        left = structure(&name, vec![left]);
                        lprec = p;
                        continue;
                    }
                }
            }
            break;
        }
        Ok((left, lprec))
    }

    fn primary(&mut self, max: u32) -> Result<(Term, u32), ParseError> {
        let tok = self
            .bump()
            .ok_or_else(|| ParseError::new("unexpected end of input"))?
            .clone();
        match tok {
            Token::Int(n) => Ok((int(n), 0)),
            Token::Str(s) => {
                let mut list = atom(LIST_NIL);
                for c in s.chars().rev() {
                    list = structure(LIST_CONS, vec![int(c as i64), list]);
                }
                Ok((list, 0))
            }
            Token::Var(name) => Ok((self.named_var(&name), 0)),
            Token::Functor(name) => {
                let args = self.arg_list()?;
                Ok((structure(&name, args), 0))
            }
            Token::Open => {
                let (t, _) = self.term(1200)?;
                self.expect(&Token::Close)?;
                Ok((t, 0))
            }
            Token::OpenList => self.list(),
            Token::OpenCurly => {
                if self.peek() == Some(&Token::CloseCurly) {
                    self.bump();
                    return Ok((atom("{}"), 0));
                }
                let (t, _) = self.term(1200)?;
                self.expect(&Token::CloseCurly)?;
                Ok((structure("{}", vec![t]), 0))
            }
            Token::Atom(name) => {
                // Prefix operator?
                if let Some((p, ty)) = self.ops.prefix(&name) {
                    // Negative numeric literal.
                    if name == "-" {
                        if let Some(Token::Int(n)) = self.peek() {
                            let n = *n;
                            self.bump();
                            return Ok((int(-n), 0));
                        }
                    }
                    let operand_ok = self.can_start_term()
                        && !matches!(self.peek(), Some(Token::Atom(a))
                            if self.ops.infix(a).is_some() && self.ops.prefix(a).is_none());
                    if p <= max && operand_ok {
                        let omax = if ty == OpType::Fy { p } else { p - 1 };
                        let save = self.pos;
                        match self.term(omax) {
                            Ok((arg, _)) => return Ok((structure(&name, vec![arg]), p)),
                            Err(_) => self.pos = save,
                        }
                    }
                }
                Ok((atom(&name), 0))
            }
            other => Err(ParseError::new(format!("unexpected token {other}"))),
        }
    }

    fn arg_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut args = Vec::new();
        loop {
            let (t, _) = self.term(999)?;
            args.push(t);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::Close) => break,
                Some(t) => {
                    return Err(ParseError::new(format!(
                        "expected , or ) in arguments, found {t}"
                    )))
                }
                None => return Err(ParseError::new("unterminated argument list")),
            }
        }
        Ok(args)
    }

    fn list(&mut self) -> Result<(Term, u32), ParseError> {
        if self.peek() == Some(&Token::CloseList) {
            self.bump();
            return Ok((atom(LIST_NIL), 0));
        }
        let mut items = Vec::new();
        let tail;
        loop {
            let (t, _) = self.term(999)?;
            items.push(t);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::Bar) => {
                    let (t, _) = self.term(999)?;
                    tail = t;
                    self.expect(&Token::CloseList)?;
                    break;
                }
                Some(Token::CloseList) => {
                    tail = atom(LIST_NIL);
                    break;
                }
                Some(t) => {
                    return Err(ParseError::new(format!(
                        "expected , | or ] in list, found {t}"
                    )))
                }
                None => return Err(ParseError::new("unterminated list")),
            }
        }
        let mut list = tail;
        for item in items.into_iter().rev() {
            list = structure(LIST_CONS, vec![item, list]);
        }
        Ok((list, 0))
    }
}

/// Flattens a `','`-conjunction term into a goal list.
pub(crate) fn flatten_conj(t: &Term, out: &mut Vec<Term>) {
    if let Term::Struct(s, args) = t {
        if args.len() == 2 && tablog_term::sym_name(*s) == "," {
            flatten_conj(&args[0], out);
            flatten_conj(&args[1], out);
            return;
        }
    }
    out.push(t.clone());
}

fn term_to_clause(t: Term, nvars: usize, names: Vec<(String, Var)>) -> ReadClause {
    if let Term::Struct(s, args) = &t {
        if args.len() == 2 && tablog_term::sym_name(*s) == ":-" {
            let mut body = Vec::new();
            flatten_conj(&args[1], &mut body);
            return ReadClause {
                head: args[0].clone(),
                body,
                nvars,
                var_names: names,
            };
        }
    }
    ReadClause {
        head: t,
        body: Vec::new(),
        nvars,
        var_names: names,
    }
}

fn parse_spec_list(t: &Term, out: &mut Vec<(String, usize)>) -> Result<(), ParseError> {
    match t {
        Term::Struct(s, args) if args.len() == 2 && tablog_term::sym_name(*s) == "," => {
            parse_spec_list(&args[0], out)?;
            parse_spec_list(&args[1], out)
        }
        Term::Struct(s, args) if args.len() == 2 && tablog_term::sym_name(*s) == "/" => {
            let name = match &args[0] {
                Term::Atom(a) => tablog_term::sym_name(*a),
                _ => return Err(ParseError::new("predicate spec name must be an atom")),
            };
            let arity = match &args[1] {
                Term::Int(n) if *n >= 0 => *n as usize,
                _ => {
                    return Err(ParseError::new(
                        "predicate spec arity must be a non-negative integer",
                    ))
                }
            };
            out.push((name, arity));
            Ok(())
        }
        _ => Err(ParseError::new(format!("malformed predicate spec: {t}"))),
    }
}

fn apply_op_directive(ops: &mut OpTable, args: &[Term]) -> Result<(), ParseError> {
    let p = match &args[0] {
        Term::Int(n) if (0..=1200).contains(n) => *n as u32,
        _ => return Err(ParseError::new("op/3: priority must be 0..1200")),
    };
    let ty = match &args[1] {
        Term::Atom(a) => match tablog_term::sym_name(*a).as_str() {
            "xfx" => OpType::Xfx,
            "xfy" => OpType::Xfy,
            "yfx" => OpType::Yfx,
            "fx" => OpType::Fx,
            "fy" => OpType::Fy,
            "xf" => OpType::Xf,
            "yf" => OpType::Yf,
            other => return Err(ParseError::new(format!("op/3: unknown type {other}"))),
        },
        _ => return Err(ParseError::new("op/3: type must be an atom")),
    };
    let mut names = Vec::new();
    let mut cur = args[2].clone();
    loop {
        match cur {
            Term::Atom(a) if tablog_term::sym_name(a) == LIST_NIL => break,
            Term::Atom(a) => {
                names.push(tablog_term::sym_name(a));
                break;
            }
            Term::Struct(s, items) if items.len() == 2 && tablog_term::sym_name(s) == LIST_CONS => {
                if let Term::Atom(a) = &items[0] {
                    names.push(tablog_term::sym_name(*a));
                } else {
                    return Err(ParseError::new("op/3: operator name must be an atom"));
                }
                cur = items[1].clone();
            }
            _ => return Err(ParseError::new("op/3: bad operator name argument")),
        }
    }
    for n in names {
        ops.add(p, ty, &n);
    }
    Ok(())
}

/// Parses a complete Prolog program: a sequence of clauses and directives.
///
/// `:- table p/2, q/3.` directives are recognized and collected; `:- op/3`
/// directives take effect immediately for the remainder of the input; other
/// directives are preserved as [`Directive::Other`].
///
/// # Errors
///
/// Returns the first tokenization or parse error encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut ops = OpTable::default();
    let mut prog = Program::default();
    let mut pos = 0;
    while pos < toks.len() {
        // Each clause parses with a fresh variable scope.
        let end = toks[pos..]
            .iter()
            .position(|t| *t == Token::End)
            .map(|i| pos + i)
            .ok_or_else(|| ParseError::new("missing final '.' after clause"))?;
        let slice = &toks[pos..end];
        if slice.is_empty() {
            return Err(ParseError::new("empty clause (stray '.')"));
        }
        let mut p = Parser::new(slice, &ops);
        let (t, _) = p.term(1200)?;
        if p.pos != slice.len() {
            return Err(ParseError::new(format!(
                "trailing tokens after clause near {}",
                slice[p.pos]
            )));
        }
        let nvars = p.next_var as usize;
        let names = std::mem::take(&mut p.names);
        // Directive?
        let mut handled = false;
        if let Term::Struct(s, args) = &t {
            if args.len() == 1 && tablog_term::sym_name(*s) == ":-" {
                handled = true;
                let d = &args[0];
                match d {
                    Term::Struct(ds, dargs)
                        if tablog_term::sym_name(*ds) == "table" && dargs.len() == 1 =>
                    {
                        let mut specs = Vec::new();
                        parse_spec_list(&dargs[0], &mut specs)?;
                        prog.directives.push(Directive::Table(specs));
                    }
                    Term::Struct(ds, dargs)
                        if tablog_term::sym_name(*ds) == "op" && dargs.len() == 3 =>
                    {
                        apply_op_directive(&mut ops, dargs)?;
                        prog.directives.push(Directive::Other(d.clone()));
                    }
                    other => prog.directives.push(Directive::Other(other.clone())),
                }
            }
        }
        if !handled {
            prog.clauses.push(term_to_clause(t, nvars, names));
        }
        pos = end + 1;
    }
    Ok(prog)
}

/// Parses a single term (no trailing `.` required), allocating its variables
/// as fresh variables in `b`. Returns the term and the name→variable map.
///
/// # Errors
///
/// Fails on tokenization or parse errors, or trailing input.
pub fn parse_term(src: &str, b: &mut Bindings) -> Result<(Term, Vec<(String, Var)>), ParseError> {
    parse_term_with_ops(src, b, &OpTable::default())
}

/// Like [`parse_term`] but with a caller-supplied operator table.
///
/// # Errors
///
/// Fails on tokenization or parse errors, or trailing input.
pub fn parse_term_with_ops(
    src: &str,
    b: &mut Bindings,
    ops: &OpTable,
) -> Result<(Term, Vec<(String, Var)>), ParseError> {
    let toks = tokenize(src)?;
    let toks: &[Token] = match toks.last() {
        Some(Token::End) => &toks[..toks.len() - 1],
        _ => &toks,
    };
    let mut p = Parser::new(toks, ops);
    let (t, _) = p.term(1200)?;
    if p.pos != toks.len() {
        return Err(ParseError::new(format!(
            "trailing tokens near {}",
            toks[p.pos]
        )));
    }
    // Re-map clause-local variables onto fresh variables from `b`.
    let base = b.fresh_block(p.next_var as usize);
    let t = t.map_vars(&mut |v| var(Var(base.0 + v.0)));
    let names = p
        .names
        .into_iter()
        .map(|(n, v)| (n, Var(base.0 + v.0)))
        .collect();
    Ok((t, names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_term::is_variant;

    fn t(src: &str) -> Term {
        let mut b = Bindings::new();
        parse_term(src, &mut b).unwrap().0
    }

    #[test]
    fn parses_fact_and_rule() {
        let p = parse_program("f(a).\ng(X) :- f(X), f(X).").unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert!(p.clauses[0].body.is_empty());
        assert_eq!(p.clauses[1].body.len(), 2);
        assert_eq!(p.clauses[1].nvars, 1);
    }

    #[test]
    fn operator_precedence_arithmetic() {
        assert_eq!(t("1 + 2 * 3"), t("+(1, *(2, 3))"));
        assert_eq!(t("1 * 2 + 3"), t("+(*(1, 2), 3)"));
        assert_eq!(t("1 - 2 - 3"), t("-(-(1, 2), 3)")); // yfx left assoc
        assert_eq!(t("2 ** 3"), t("**(2, 3)"));
    }

    #[test]
    fn xfy_right_assoc() {
        assert_eq!(t("a , b , c"), t("','(a, ','(b, c))"));
        assert_eq!(t("a ; b ; c"), t("';'(a, ';'(b, c))"));
    }

    #[test]
    fn if_then_else_shape() {
        let term = t("( a -> b ; c )");
        assert_eq!(term, t("';'('->'(a,b), c)"));
    }

    #[test]
    fn lists_desugar_to_cons() {
        assert_eq!(t("[a,b]"), t("'.'(a, '.'(b, []))"));
        let lt = t("[H|T]");
        assert!(matches!(lt, Term::Struct(_, _)));
        assert_eq!(t("[]"), atom("[]"));
    }

    #[test]
    fn negative_literals() {
        assert_eq!(t("-5"), int(-5));
        assert_eq!(t("1 - -2"), t("-(1, -2)"));
    }

    #[test]
    fn prefix_minus_on_var() {
        let term = t("- X");
        assert!(
            matches!(&term, Term::Struct(s, a) if tablog_term::sym_name(*s) == "-" && a.len() == 1)
        );
    }

    #[test]
    fn anonymous_vars_are_distinct() {
        let mut b = Bindings::new();
        let (term, names) = parse_term("f(_, _)", &mut b).unwrap();
        assert!(names.is_empty());
        assert_eq!(term.vars().len(), 2);
    }

    #[test]
    fn named_vars_are_shared() {
        let mut b = Bindings::new();
        let (term, names) = parse_term("f(X, X, Y)", &mut b).unwrap();
        assert_eq!(names.len(), 2);
        assert_eq!(term.vars().len(), 2);
    }

    #[test]
    fn table_directive() {
        let p = parse_program(":- table app/3, rev/2.\napp([],Y,Y).").unwrap();
        assert_eq!(p.tabled(), vec![("app".into(), 3), ("rev".into(), 2)]);
    }

    #[test]
    fn op_directive_takes_effect() {
        let p = parse_program(":- op(700, xfx, ===>).\nrule(a ===> b).").unwrap();
        let c = &p.clauses[0];
        assert_eq!(c.head.args()[0], t("'===>'(a, b)"));
    }

    #[test]
    fn strings_become_code_lists() {
        assert_eq!(t("\"ab\""), t("[97, 98]"));
    }

    #[test]
    fn parenthesized_comma_in_args() {
        let term = t("f((a, b), c)");
        assert_eq!(term.args().len(), 2);
    }

    #[test]
    fn clause_neck_is_split() {
        let p = parse_program("h(X) :- (a ; b), c.").unwrap();
        assert_eq!(p.clauses[0].body.len(), 2);
    }

    #[test]
    fn variant_across_parses() {
        let a = t("f(X, g(X, Y))");
        let b = t("f(P, g(P, Q))");
        assert!(is_variant(&a, &b));
    }

    #[test]
    fn error_on_missing_dot() {
        assert!(parse_program("f(a)").is_err());
    }

    #[test]
    fn error_on_unbalanced_paren() {
        let mut b = Bindings::new();
        assert!(parse_term("f(a", &mut b).is_err());
    }

    #[test]
    fn curly_braces() {
        assert_eq!(t("{}"), atom("{}"));
        let term = t("{a, b}");
        assert!(matches!(&term, Term::Struct(s, _) if tablog_term::sym_name(*s) == "{}"));
    }

    #[test]
    fn univ_and_is() {
        assert_eq!(t("X is Y + 1"), t("is(X, +(Y, 1))"));
        assert_eq!(t("T =.. L"), t("'=..'(T, L)"));
    }

    #[test]
    fn not_operator() {
        let term = t("\\+ p(X)");
        assert!(
            matches!(&term, Term::Struct(s, a) if tablog_term::sym_name(*s) == "\\+" && a.len() == 1)
        );
    }

    #[test]
    fn bar_as_disjunction_outside_list() {
        assert_eq!(t("(a | b)"), t("(a ; b)"));
    }

    #[test]
    fn deep_program_roundtrip_structure() {
        let src =
            "qs([],[]).\nqs([X|Xs],S) :- part(X,Xs,L,G), qs(L,SL), qs(G,SG), app(SL,[X|SG],S).";
        let p = parse_program(src).unwrap();
        assert_eq!(p.clauses[1].body.len(), 4);
        assert_eq!(p.clauses[1].nvars, 7);
    }
}
