//! Prolog tokenizer.

use std::fmt;

/// A lexical token of Prolog source text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An atom: unquoted lowercase identifier, quoted `'…'`, or a symbolic
    /// atom such as `:-` or `=..`.
    Atom(String),
    /// An atom immediately followed by `(` with no intervening layout —
    /// i.e., a functor application head, per standard Prolog syntax.
    Functor(String),
    /// A named variable (`X`, `_Foo`) or anonymous `_`.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A double-quoted string, to be read as a list of character codes.
    Str(String),
    /// `(`
    Open,
    /// `)`
    Close,
    /// `[`
    OpenList,
    /// `]`
    CloseList,
    /// `{`
    OpenCurly,
    /// `}`
    CloseCurly,
    /// `,` — both argument separator and the conjunction operator.
    Comma,
    /// `|` in list tails.
    Bar,
    /// The clause terminator: `.` followed by layout or end of input.
    End,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Atom(s) | Token::Functor(s) | Token::Var(s) => f.write_str(s),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Open => f.write_str("("),
            Token::Close => f.write_str(")"),
            Token::OpenList => f.write_str("["),
            Token::CloseList => f.write_str("]"),
            Token::OpenCurly => f.write_str("{"),
            Token::CloseCurly => f.write_str("}"),
            Token::Comma => f.write_str(","),
            Token::Bar => f.write_str("|"),
            Token::End => f.write_str("."),
        }
    }
}

/// A tokenization failure with a byte offset and line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenError {
    /// Human-readable description.
    pub message: String,
    /// Line (1-based) at which the error occurred.
    pub line: usize,
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TokenError {}

const SYMBOL_CHARS: &str = "+-*/\\^<>=~:.?@#&$";

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, msg: impl Into<String>) -> TokenError {
        TokenError {
            message: msg.into(),
            line: self.line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c == Some(b'\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Skips whitespace and comments; returns `true` if any layout was
    /// consumed (needed to distinguish `f(` from `f (`).
    fn skip_layout(&mut self) -> Result<bool, TokenError> {
        let start = self.pos;
        loop {
            match self.peek() {
                Some(c) if (c as char).is_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(self.pos != start)
    }

    fn read_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn read_quoted(&mut self, quote: u8) -> Result<String, TokenError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated quoted token")),
                Some(c) if c == quote => {
                    // Doubled quote is an escaped quote.
                    if self.peek() == Some(quote) {
                        self.bump();
                        out.push(quote as char);
                    } else {
                        return Ok(out);
                    }
                }
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'a') => out.push('\x07'),
                    Some(b'b') => out.push('\x08'),
                    Some(b'f') => out.push('\x0c'),
                    Some(b'v') => out.push('\x0b'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'\'') => out.push('\''),
                    Some(b'"') => out.push('"'),
                    Some(b'`') => out.push('`'),
                    Some(b'\n') => {} // line continuation
                    Some(c) => return Err(self.err(format!("unknown escape \\{}", c as char))),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn maybe_functor(&mut self, name: String, toks: &mut Vec<Token>) {
        if self.peek() == Some(b'(') {
            self.bump();
            toks.push(Token::Functor(name));
        } else {
            toks.push(Token::Atom(name));
        }
    }
}

fn is_alnum(c: u8) -> bool {
    (c as char).is_ascii_alphanumeric() || c == b'_'
}

fn is_symbol_char(c: u8) -> bool {
    SYMBOL_CHARS.as_bytes().contains(&c)
}

/// Tokenizes Prolog source text.
///
/// # Errors
///
/// Returns a [`TokenError`] on malformed input: unterminated quotes or
/// comments, bad escapes, or stray characters.
///
/// ```
/// use tablog_syntax::{tokenize, Token};
/// let toks = tokenize("p(X) :- q(X).")?;
/// assert_eq!(toks[0], Token::Functor("p".into()));
/// assert_eq!(toks.last(), Some(&Token::End));
/// # Ok::<(), tablog_syntax::TokenError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, TokenError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    loop {
        lx.skip_layout()?;
        let Some(c) = lx.peek() else { break };
        match c {
            b'(' => {
                lx.bump();
                toks.push(Token::Open);
            }
            b')' => {
                lx.bump();
                toks.push(Token::Close);
            }
            b'[' => {
                lx.bump();
                toks.push(Token::OpenList);
            }
            b']' => {
                lx.bump();
                toks.push(Token::CloseList);
            }
            b'{' => {
                lx.bump();
                toks.push(Token::OpenCurly);
            }
            b'}' => {
                lx.bump();
                toks.push(Token::CloseCurly);
            }
            b',' => {
                lx.bump();
                toks.push(Token::Comma);
            }
            b'|' => {
                lx.bump();
                toks.push(Token::Bar);
            }
            b'!' => {
                lx.bump();
                toks.push(Token::Atom("!".into()));
            }
            b';' => {
                lx.bump();
                toks.push(Token::Atom(";".into()));
            }
            b'\'' => {
                lx.bump();
                let name = lx.read_quoted(b'\'')?;
                lx.maybe_functor(name, &mut toks);
            }
            b'"' => {
                lx.bump();
                let s = lx.read_quoted(b'"')?;
                toks.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                // 0'c char-code literal.
                if c == b'0' && lx.peek2() == Some(b'\'') {
                    lx.bump();
                    lx.bump();
                    let ch = lx.bump().ok_or_else(|| lx.err("unterminated 0' literal"))?;
                    let code = if ch == b'\\' {
                        match lx.bump() {
                            Some(b'n') => b'\n',
                            Some(b't') => b'\t',
                            Some(b'\\') => b'\\',
                            Some(b'\'') => b'\'',
                            Some(c2) => c2,
                            None => return Err(lx.err("unterminated 0' escape")),
                        }
                    } else {
                        ch
                    };
                    toks.push(Token::Int(code as i64));
                } else {
                    let digits = lx.read_while(|c| c.is_ascii_digit());
                    let n: i64 = digits
                        .parse()
                        .map_err(|_| lx.err(format!("integer overflow: {digits}")))?;
                    toks.push(Token::Int(n));
                }
            }
            b'a'..=b'z' => {
                let name = lx.read_while(is_alnum);
                lx.maybe_functor(name, &mut toks);
            }
            b'A'..=b'Z' | b'_' => {
                let name = lx.read_while(is_alnum);
                toks.push(Token::Var(name));
            }
            c if is_symbol_char(c) => {
                let sym = lx.read_while(is_symbol_char);
                // A solitary '.' followed by layout or EOF ends the clause.
                if sym == "." {
                    toks.push(Token::End);
                } else if let Some(rest) = sym.strip_suffix('.') {
                    // e.g. "foo:-bar." tokenizes ":-" then later "."; but a
                    // symbolic run ending in '.' at EOF/layout splits off End.
                    let at_end = lx
                        .peek()
                        .map(|c| (c as char).is_whitespace() || c == b'%')
                        .unwrap_or(true);
                    if at_end && !rest.is_empty() && !rest.ends_with('.') {
                        lx.maybe_functor(rest.to_string(), &mut toks);
                        toks.push(Token::End);
                    } else {
                        lx.maybe_functor(sym, &mut toks);
                    }
                } else {
                    lx.maybe_functor(sym, &mut toks);
                }
            }
            other => return Err(lx.err(format!("unexpected character {:?}", other as char))),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(src: &str) -> Vec<Token> {
        tokenize(src).unwrap()
    }

    #[test]
    fn simple_clause() {
        let t = atoms("p(X) :- q(X).");
        assert_eq!(
            t,
            vec![
                Token::Functor("p".into()),
                Token::Var("X".into()),
                Token::Close,
                Token::Atom(":-".into()),
                Token::Functor("q".into()),
                Token::Var("X".into()),
                Token::Close,
                Token::End,
            ]
        );
    }

    #[test]
    fn functor_requires_adjacency() {
        let t = atoms("f (x)");
        assert_eq!(t[0], Token::Atom("f".into()));
        assert_eq!(t[1], Token::Open);
    }

    #[test]
    fn quoted_atoms_and_escapes() {
        let t = atoms("'hello world'('it''s', '\\n').");
        assert_eq!(t[0], Token::Functor("hello world".into()));
        assert_eq!(t[1], Token::Atom("it's".into()));
        assert_eq!(t[3], Token::Atom("\n".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let t = atoms("a. % line comment\n/* block\ncomment */ b.");
        assert_eq!(
            t,
            vec![
                Token::Atom("a".into()),
                Token::End,
                Token::Atom("b".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn end_vs_symbolic_dot() {
        let t = atoms("X =.. L.");
        assert_eq!(t[1], Token::Atom("=..".into()));
        assert_eq!(t[3], Token::End);
    }

    #[test]
    fn char_code_literal() {
        let t = atoms("0'a 0'\\n");
        assert_eq!(t, vec![Token::Int(97), Token::Int(10)]);
    }

    #[test]
    fn string_literal() {
        let t = atoms("\"ab\"");
        assert_eq!(t, vec![Token::Str("ab".into())]);
    }

    #[test]
    fn negative_context_tokens() {
        let t = atoms("X is -1 + Y.");
        assert_eq!(t[2], Token::Atom("-".into()));
        assert_eq!(t[3], Token::Int(1));
    }

    #[test]
    fn bars_and_lists() {
        let t = atoms("[H|T]");
        assert_eq!(
            t,
            vec![
                Token::OpenList,
                Token::Var("H".into()),
                Token::Bar,
                Token::Var("T".into()),
                Token::CloseList
            ]
        );
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn cut_and_semicolon() {
        let t = atoms("! ; x");
        assert_eq!(t[0], Token::Atom("!".into()));
        assert_eq!(t[1], Token::Atom(";".into()));
    }

    #[test]
    fn clause_end_at_eof_without_newline() {
        let t = atoms("a.");
        assert_eq!(t, vec![Token::Atom("a".into()), Token::End]);
    }
}
