//! Prolog reader and writer for the `tablog` system.
//!
//! The analyses of the PLDI'96 paper consume ordinary Prolog programs, so the
//! system needs a faithful reader: a tokenizer, a standard operator table,
//! and an operator-precedence parser producing [`tablog_term::Term`]s, plus a
//! writer that renders terms back in operator syntax. The subset covers what
//! the benchmark suite and the generated abstract programs need: clauses,
//! directives, full operator syntax, lists, quoted atoms, comments, strings
//! (as code lists), and integers.
//!
//! # Example
//!
//! ```
//! use tablog_syntax::{parse_program, term_to_string};
//!
//! let prog = parse_program("app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).")?;
//! assert_eq!(prog.clauses.len(), 2);
//! let head = &prog.clauses[1].head;
//! assert_eq!(term_to_string(head), "app([A|B],C,[A|D])");
//! # Ok::<(), tablog_syntax::ParseError>(())
//! ```

mod ops;
mod parser;
mod token;
mod writer;

pub use ops::{OpTable, OpType};
pub use parser::{
    parse_program, parse_term, parse_term_with_ops, Directive, ParseError, Program, ReadClause,
};
pub use token::{tokenize, Token, TokenError};
pub use writer::{term_to_string, TermWriter};

/// The functor used for list cells, `'.'/2`, with `[]` as the empty list.
pub const LIST_CONS: &str = ".";
/// The empty-list atom.
pub const LIST_NIL: &str = "[]";
