//! The operator table.

use std::collections::HashMap;

/// Fixity and associativity of a Prolog operator, as in ISO `op/3`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpType {
    /// Infix, neither side may have equal priority (`xfx`).
    Xfx,
    /// Infix, right side may have equal priority (`xfy`).
    Xfy,
    /// Infix, left side may have equal priority (`yfx`).
    Yfx,
    /// Prefix, operand strictly lower priority (`fx`).
    Fx,
    /// Prefix, operand may have equal priority (`fy`).
    Fy,
    /// Postfix, operand strictly lower priority (`xf`).
    Xf,
    /// Postfix, operand may have equal priority (`yf`).
    Yf,
}

impl OpType {
    /// `true` for the infix fixities.
    pub fn is_infix(self) -> bool {
        matches!(self, OpType::Xfx | OpType::Xfy | OpType::Yfx)
    }

    /// `true` for the prefix fixities.
    pub fn is_prefix(self) -> bool {
        matches!(self, OpType::Fx | OpType::Fy)
    }

    /// `true` for the postfix fixities.
    pub fn is_postfix(self) -> bool {
        matches!(self, OpType::Xf | OpType::Yf)
    }
}

/// A table mapping operator names to their (priority, fixity) definitions.
///
/// One name may simultaneously have an infix/postfix and a prefix definition
/// (e.g. `-`). [`OpTable::default`] loads the standard Prolog operators.
#[derive(Clone, Debug)]
pub struct OpTable {
    infix: HashMap<String, (u32, OpType)>,
    prefix: HashMap<String, (u32, OpType)>,
    postfix: HashMap<String, (u32, OpType)>,
}

impl Default for OpTable {
    fn default() -> Self {
        let mut t = OpTable::empty();
        for (p, ty, names) in STANDARD_OPS {
            for name in names.split_whitespace() {
                t.add(*p, *ty, name);
            }
        }
        t
    }
}

const STANDARD_OPS: &[(u32, OpType, &str)] = &[
    (1200, OpType::Xfx, ":- -->"),
    (1200, OpType::Fx, ":- ?-"),
    (
        1150,
        OpType::Fx,
        "table dynamic discontiguous multifile mode public import export",
    ),
    (1100, OpType::Xfy, "; |"),
    (1050, OpType::Xfy, "->"),
    (1000, OpType::Xfy, ","),
    (900, OpType::Fy, "\\+ not"),
    (
        700,
        OpType::Xfx,
        "= \\= == \\== @< @> @=< @>= is =.. =:= =\\= < > =< >=",
    ),
    (500, OpType::Yfx, "+ - /\\ \\/ xor"),
    (400, OpType::Yfx, "* / // mod rem << >> div"),
    (200, OpType::Xfx, "**"),
    (200, OpType::Xfy, "^"),
    (200, OpType::Fy, "- + \\"),
    (100, OpType::Yfx, "@"),
    (1, OpType::Fx, "$"),
];

impl OpTable {
    /// An empty table, for callers wanting full control.
    pub fn empty() -> Self {
        OpTable {
            infix: HashMap::new(),
            prefix: HashMap::new(),
            postfix: HashMap::new(),
        }
    }

    /// Adds (or replaces) an operator definition, like `op/3`.
    pub fn add(&mut self, priority: u32, fixity: OpType, name: &str) {
        let entry = (priority, fixity);
        if fixity.is_infix() {
            self.infix.insert(name.to_owned(), entry);
        } else if fixity.is_prefix() {
            self.prefix.insert(name.to_owned(), entry);
        } else {
            self.postfix.insert(name.to_owned(), entry);
        }
    }

    /// Removes an operator from the given fixity class.
    pub fn remove(&mut self, fixity: OpType, name: &str) {
        if fixity.is_infix() {
            self.infix.remove(name);
        } else if fixity.is_prefix() {
            self.prefix.remove(name);
        } else {
            self.postfix.remove(name);
        }
    }

    /// Looks up the infix definition of `name`.
    pub fn infix(&self, name: &str) -> Option<(u32, OpType)> {
        self.infix.get(name).copied()
    }

    /// Looks up the prefix definition of `name`.
    pub fn prefix(&self, name: &str) -> Option<(u32, OpType)> {
        self.prefix.get(name).copied()
    }

    /// Looks up the postfix definition of `name`.
    pub fn postfix(&self, name: &str) -> Option<(u32, OpType)> {
        self.postfix.get(name).copied()
    }

    /// `true` if `name` is an operator in any fixity class.
    pub fn is_op(&self, name: &str) -> bool {
        self.infix.contains_key(name)
            || self.prefix.contains_key(name)
            || self.postfix.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_clause_ops() {
        let t = OpTable::default();
        assert_eq!(t.infix(":-"), Some((1200, OpType::Xfx)));
        assert_eq!(t.prefix(":-"), Some((1200, OpType::Fx)));
        assert_eq!(t.infix(","), Some((1000, OpType::Xfy)));
    }

    #[test]
    fn minus_is_both_prefix_and_infix() {
        let t = OpTable::default();
        assert!(t.prefix("-").is_some());
        assert!(t.infix("-").is_some());
    }

    #[test]
    fn add_and_remove_custom_op() {
        let mut t = OpTable::default();
        t.add(700, OpType::Xfx, "===>");
        assert!(t.is_op("===>"));
        t.remove(OpType::Xfx, "===>");
        assert!(!t.is_op("===>"));
    }

    #[test]
    fn comparison_ops_present() {
        let t = OpTable::default();
        for op in ["=", "is", "<", ">=", "=..", "=:=", "@<"] {
            assert_eq!(t.infix(op).map(|e| e.0), Some(700), "{op}");
        }
    }
}
