//! Term writer: renders terms back in operator syntax.

use crate::ops::{OpTable, OpType};
use crate::{LIST_CONS, LIST_NIL};
use std::collections::HashMap;
use std::fmt::Write as _;
use tablog_term::{sym_name, Term, Var};

/// Renders terms as Prolog text with operator notation, list syntax and
/// alphabetic variable names (`A`, `B`, …, `A1`, `B1`, …).
///
/// Variable naming is per-writer: the same writer names the same variable
/// consistently across calls, which is what clause printing needs.
#[derive(Debug, Default)]
pub struct TermWriter {
    ops: OpTable,
    names: HashMap<Var, String>,
}

impl TermWriter {
    /// Creates a writer with the standard operator table.
    pub fn new() -> Self {
        TermWriter::default()
    }

    /// Creates a writer with a custom operator table.
    pub fn with_ops(ops: OpTable) -> Self {
        TermWriter {
            ops,
            names: HashMap::new(),
        }
    }

    fn var_name(&mut self, v: Var) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        let i = self.names.len();
        let letter = (b'A' + (i % 26) as u8) as char;
        let suffix = i / 26;
        let name = if suffix == 0 {
            letter.to_string()
        } else {
            format!("{letter}{suffix}")
        };
        self.names.insert(v, name.clone());
        name
    }

    /// Renders `t` to a string.
    pub fn write(&mut self, t: &Term) -> String {
        let mut s = String::new();
        self.write_prec(&mut s, t, 1200);
        s
    }

    fn write_prec(&mut self, out: &mut String, t: &Term, max: u32) {
        match t {
            Term::Var(v) => {
                let n = self.var_name(*v);
                out.push_str(&n);
            }
            Term::Int(i) => {
                // Negative literals start with '-', which would fuse with a
                // preceding symbolic operator.
                push_token(out, &i.to_string());
            }
            Term::Atom(s) => {
                let name = sym_name(*s);
                // An atom that is itself an operator is ambiguous as an
                // operand (`- + :- x` has no unique reading); parenthesize
                // it, as standard writers do.
                if self.ops.is_op(&name) {
                    push_token(out, "(");
                    out.push_str(&quote_atom(&name));
                    out.push(')');
                } else {
                    push_token(out, &quote_atom(&name));
                }
            }
            Term::Struct(s, args) => {
                let name = sym_name(*s);
                // List?
                if name == LIST_CONS && args.len() == 2 {
                    self.write_list(out, t);
                    return;
                }
                if name == "{}" && args.len() == 1 {
                    out.push('{');
                    self.write_prec(out, &args[0], 1200);
                    out.push('}');
                    return;
                }
                if args.len() == 2 {
                    if let Some((p, ty)) = self.ops.infix(&name) {
                        let (lmax, rmax) = match ty {
                            OpType::Xfx => (p - 1, p - 1),
                            OpType::Xfy => (p - 1, p),
                            OpType::Yfx => (p, p - 1),
                            _ => (p, p),
                        };
                        let paren = p > max;
                        if paren {
                            out.push('(');
                        }
                        self.write_prec(out, &args[0], lmax);
                        // Render the right side first: a symbolic operator
                        // immediately followed by `(` would re-tokenize as a
                        // functor application (`*(` ≠ `* (`), so a space is
                        // needed exactly when the operand opens with one.
                        let mut right = String::new();
                        self.write_prec(&mut right, &args[1], rmax);
                        if name == "," {
                            out.push(',');
                        } else {
                            let alpha =
                                name.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
                            if alpha {
                                let _ = write!(out, " {name} ");
                            } else {
                                push_token(out, &name);
                            }
                        }
                        push_token(out, &right);
                        if paren {
                            out.push(')');
                        }
                        return;
                    }
                }
                if args.len() == 1 {
                    if let Some((p, ty)) = self.ops.prefix(&name) {
                        let omax = if ty == OpType::Fy { p } else { p - 1 };
                        let paren = p > max;
                        if paren {
                            out.push('(');
                        }
                        push_token(out, &name);
                        // Space needed if operand could merge with op name.
                        out.push(' ');
                        // `- 0` would read back as the integer literal -0;
                        // parenthesize numeric operands of prefix minus.
                        if name == "-" && matches!(args[0], Term::Int(_)) {
                            out.push('(');
                            self.write_prec(out, &args[0], 1200);
                            out.push(')');
                        } else {
                            self.write_prec(out, &args[0], omax);
                        }
                        if paren {
                            out.push(')');
                        }
                        return;
                    }
                }
                out.push_str(&quote_atom(&name));
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.write_prec(out, a, 999);
                }
                out.push(')');
            }
        }
    }

    fn write_list(&mut self, out: &mut String, t: &Term) {
        out.push('[');
        let mut cur = t;
        let mut first = true;
        loop {
            match cur {
                Term::Struct(s, args) if args.len() == 2 && sym_name(*s) == LIST_CONS => {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.write_prec(out, &args[0], 999);
                    cur = &args[1];
                }
                Term::Atom(s) if sym_name(*s) == LIST_NIL => break,
                other => {
                    out.push('|');
                    self.write_prec(out, other, 999);
                    break;
                }
            }
        }
        out.push(']');
    }
}

/// Appends `tok`, inserting a space when the juxtaposition would
/// re-tokenize differently: two symbolic runs fuse (`=` + `-3` → `=-3`,
/// an atom `+` before `:-`), and a symbolic operator directly before `(`
/// reads as a functor application (`*(` vs `* (`).
fn push_token(out: &mut String, tok: &str) {
    const SYMBOL_CHARS: &str = "+-*/\\^<>=~:.?@#&$";
    if let (Some(a), Some(b)) = (out.chars().last(), tok.chars().next()) {
        let fuse = SYMBOL_CHARS.contains(a) && (SYMBOL_CHARS.contains(b) || b == '(');
        if fuse {
            out.push(' ');
        }
    }
    out.push_str(tok);
}

fn needs_quote(name: &str) -> bool {
    if name.is_empty() {
        return true;
    }
    if name == "[]" || name == "{}" || name == "!" || name == ";" || name == "," {
        return false;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("nonempty");
    if first.is_ascii_lowercase() {
        return !chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    const SYMBOL_CHARS: &str = "+-*/\\^<>=~:.?@#&$";
    !name.chars().all(|c| SYMBOL_CHARS.contains(c))
}

fn quote_atom(name: &str) -> String {
    if needs_quote(name) {
        let escaped = name.replace('\\', "\\\\").replace('\'', "\\'");
        format!("'{escaped}'")
    } else {
        name.to_owned()
    }
}

/// Renders a term with a fresh [`TermWriter`] (standard operators, variables
/// named from `A`).
///
/// ```
/// use tablog_syntax::term_to_string;
/// use tablog_term::{structure, atom, var, Var};
/// let t = structure("f", vec![var(Var(4)), atom("nil"), var(Var(4))]);
/// assert_eq!(term_to_string(&t), "f(A,nil,A)");
/// ```
pub fn term_to_string(t: &Term) -> String {
    TermWriter::new().write(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use tablog_term::{is_variant, Bindings};

    fn roundtrip(src: &str) -> String {
        let mut b = Bindings::new();
        let (t, _) = parse_term(src, &mut b).unwrap();
        term_to_string(&t)
    }

    #[test]
    fn writes_lists() {
        assert_eq!(roundtrip("[a, b, c]"), "[a,b,c]");
        assert_eq!(roundtrip("[a | T]"), "[a|A]");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn writes_operators_with_minimal_parens() {
        assert_eq!(roundtrip("1 + 2 * 3"), "1+2*3");
        assert_eq!(roundtrip("(1 + 2) * 3"), "(1+2)*3");
        // The space before '(' is load-bearing: "-(…)" would re-tokenize
        // as a functor application.
        assert_eq!(roundtrip("1 - (2 - 3)"), "1- (2-3)");
        assert_eq!(roundtrip("a :- b, c"), "a:-b,c");
    }

    #[test]
    fn quotes_when_needed() {
        assert_eq!(roundtrip("'hello world'"), "'hello world'");
        assert_eq!(roundtrip("'ok_atom'"), "ok_atom");
        assert_eq!(roundtrip("'It''s'"), "'It\\'s'");
    }

    #[test]
    fn variables_named_consistently() {
        assert_eq!(roundtrip("f(X, Y, X)"), "f(A,B,A)");
    }

    #[test]
    fn roundtrip_preserves_variant_structure() {
        for src in [
            "app([X|Xs],Ys,[X|Zs]):-app(Xs,Ys,Zs)",
            "f(g(h(1)), [a,b|T], X + Y * Z)",
            "p :- (q -> r ; s)",
            "- (1 + 2)",
        ] {
            let mut b1 = Bindings::new();
            let (t1, _) = parse_term(src, &mut b1).unwrap();
            let printed = term_to_string(&t1);
            let mut b2 = Bindings::new();
            let (t2, _) = parse_term(&printed, &mut b2).unwrap();
            assert!(is_variant(&t1, &t2), "{src} => {printed}");
        }
    }

    #[test]
    fn many_vars_get_suffixed_names() {
        let args: Vec<tablog_term::Term> = (0..30).map(|i| tablog_term::var(Var(i))).collect();
        let t = tablog_term::structure("big", args);
        let s = term_to_string(&t);
        assert!(s.contains("A1"), "{s}");
    }
}
