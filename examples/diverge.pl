% A deliberately non-terminating program pair for exercising resource
% budgets and the run-health observatory (`tablog watch`).
%
%   num/1  diverges *productively*: infinitely many answers, so any budget
%          trips mid-derivation with a non-empty sound partial answer set.
%   q/1    diverges *barrenly*: every recursive call is a fresh call
%          pattern, tables grow forever, and no answer ever appears — the
%          stall watchdog's signature.
%
% Try:
%   tablog watch examples/diverge.pl 'num(N)' --max-steps 5000
%   tablog watch examples/diverge.pl 'q(a)' --deadline 500 --metrics out.prom

:- table num/1.
num(z).
num(s(X)) :- num(X).

:- table q/1.
q(X) :- q(f(X)).
