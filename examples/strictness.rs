//! Strictness analysis of a lazy functional program, cross-checked against
//! actual lazy evaluation.
//!
//! Run with `cargo run --example strictness`.
//!
//! The analysis (the paper's Figure 3 formulation, evaluated on the tabled
//! engine) reports per-argument demands; the interpreter then demonstrates
//! the verdicts: a strict position diverges when given ⊥, a lazy one
//! does not.

use tablog_core::strictness::StrictnessAnalyzer;
use tablog_funlang::{eval_main, parse_fun_program, EvalError};

const PROGRAM: &str = "
    ap(nil, ys) = ys;
    ap(x : xs, ys) = x : ap(xs, ys);

    sum(nil) = 0;
    sum(x : xs) = x + sum(xs);

    hd(x : xs) = x;

    k(x, y) = x;

    from(n) = n : from(n + 1);

    take(0, xs) = nil;
    take(n, x : xs) = x : take(n - 1, xs);

    main = sum(take(5, from(10)));
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = StrictnessAnalyzer::new().analyze_source(PROGRAM)?;
    println!("strictness verdicts (e = full, d = head-normal-form, n = none):");
    for f in report.functions() {
        println!("  {}", f.summary());
    }

    // The paper's flagship example: ap is ee-strict in both arguments
    // under full demand, but only d-strict in the first under head demand.
    let ap = report.strictness("ap").expect("ap analyzed");
    assert!(ap.is_strict(0) && ap.is_strict(1));

    // Cross-check with the lazy interpreter.
    println!("\ninterpreter cross-checks:");
    let diverging = format!("{PROGRAM} bot = bot; try1 = hd(bot);");
    let prog = parse_fun_program(&diverging)?;
    match tablog_funlang::eval_call(&prog, "try1", 200_000) {
        Err(EvalError::OutOfFuel) => {
            println!("  hd(bot) diverges — hd is strict, as analyzed")
        }
        other => println!("  unexpected: {other:?}"),
    }
    let lazy = format!("{PROGRAM} bot = bot; try2 = k(42, bot);");
    let prog = parse_fun_program(&lazy)?;
    let v = tablog_funlang::eval_call(&prog, "try2", 200_000)?;
    println!("  k(42, bot) = {v} — k is lazy in its second argument, as analyzed");

    let out = eval_main(&parse_fun_program(PROGRAM)?)?;
    println!("\nmain evaluates to {out}");
    Ok(())
}
