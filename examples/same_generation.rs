//! The classic deductive-database workload: same-generation over a family
//! tree, contrasting tabled top-down evaluation against magic-sets
//! bottom-up evaluation — the XSB vs. Coral comparison of the paper's
//! Section 7, on one query.
//!
//! Run with `cargo run --example same_generation`.

use tablog_engine::Engine;
use tablog_magic::{magic_transform, BottomUp, Rule};
use tablog_syntax::{parse_program, parse_term};
use tablog_term::Bindings;

const FAMILY: &str = "
    :- table sg/2.
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).

    par(ann, carol).  par(bob, carol).
    par(carol, eve).  par(dave, eve).
    par(eve, gail).   par(frank, gail).
    par(gail, iris).  par(hank, iris).

    person(ann). person(bob). person(carol). person(dave).
    person(eve). person(frank). person(gail). person(hank).
    person(iris).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Tabled top-down: goal-directed for free --------------------------
    let engine = Engine::from_source(FAMILY)?;
    let t0 = std::time::Instant::now();
    let solutions = engine.solve("sg(ann, Who)")?;
    let tabled_time = t0.elapsed();
    let mut names = solutions.to_strings();
    names.sort();
    println!("same generation as ann (tabled): {names:?}");

    // --- Magic sets + semi-naive bottom-up -------------------------------
    let program = parse_program(FAMILY)?;
    let rules: Vec<Rule> = program
        .clauses
        .iter()
        .map(|c| Rule::new(c.head.clone(), c.body.clone()))
        .collect();
    let mut b = Bindings::new();
    let (query, _) = parse_term("sg(ann, Who)", &mut b)?;
    let t1 = std::time::Instant::now();
    let magic = magic_transform(&rules, &query, &b);
    let mut eval = BottomUp::new(magic.rules.clone());
    eval.run()?;
    let magic_time = t1.elapsed();
    let mut magic_names: Vec<String> = magic
        .answers(&eval, &query, &b)
        .iter()
        .map(|t| tablog_syntax::term_to_string(&t[1]))
        .collect();
    magic_names.sort();
    println!("same generation as ann (magic):  {magic_names:?}");

    assert_eq!(names.len(), magic_names.len());
    println!(
        "\ntabled: {tabled_time:?}; magic bottom-up: {magic_time:?} \
         ({} derivation attempts, {} iterations)",
        eval.derivations(),
        eval.iterations()
    );
    println!(
        "magic call patterns computed: {} (the tabled engine records these \
         in its call table as a side effect)",
        eval.relation(magic.magic_query).len()
    );
    Ok(())
}
