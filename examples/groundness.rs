//! Groundness analysis of a logic program, three ways — the paper's core
//! experiment in miniature.
//!
//! Run with `cargo run --example groundness`.
//!
//! The same Prop-domain analysis runs (1) declaratively on the tabled
//! engine — the paper's approach, (2) on the hand-coded direct analyzer —
//! the GAIA-style comparator, and (3) bottom-up after the magic-sets
//! transformation — the Coral-style comparator. All three agree.

use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{transform_program, EntryPoint, GroundnessAnalyzer, IffMode};
use tablog_magic::BottomUp;
use tablog_syntax::parse_program;

const PROGRAM: &str = "
    % Naive-reverse with an accumulator, plus a length check.
    nrev([], []).
    nrev([X|Xs], Rs) :- nrev(Xs, Ss), append(Ss, [X], Rs).

    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

    len([], 0).
    len([_|Xs], N) :- len(Xs, M), N is M + 1.

    check(Xs, N) :- nrev(Xs, Rs), len(Rs, N).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Declarative analysis on the tabled engine ------------------
    let report = GroundnessAnalyzer::new().analyze_source(PROGRAM)?;
    println!("tabled-engine output groundness (open calls):");
    for p in report.predicates() {
        let flags: Vec<&str> = p
            .definitely_ground
            .iter()
            .map(|&g| if g { "g" } else { "?" })
            .collect();
        println!(
            "  {}/{}: args [{}], {} success rows, formula has {} models",
            p.name,
            p.arity,
            flags.join(","),
            p.success_rows.len(),
            p.prop.count(),
        );
    }
    println!(
        "  phases: preprocess {:?}, analysis {:?}, collection {:?}; tables: {} bytes",
        report.timings.preprocess,
        report.timings.analysis,
        report.timings.collection,
        report.table_bytes(),
    );

    // Goal-directed: check/2 called with a ground list.
    let program = parse_program(PROGRAM)?;
    let entry = EntryPoint::parse("check(g, f)")?;
    let directed =
        GroundnessAnalyzer::new().analyze_with_entries(&program, std::slice::from_ref(&entry))?;
    let nrev = directed
        .output_groundness("nrev", 2)
        .expect("nrev analyzed");
    println!("\ninput groundness (entry check(g, f)):");
    println!("  nrev call patterns: {:?}", nrev.call_patterns);
    println!(
        "  nrev definitely ground on success: {:?}",
        nrev.definitely_ground
    );

    // --- 2. The hand-coded direct analyzer (GAIA stand-in) -------------
    let direct = DirectAnalyzer::new().analyze_source(PROGRAM)?;
    let t = report.output_groundness("append", 3).expect("append");
    let d = direct.output_groundness("append", 3).expect("append");
    assert_eq!(t.prop, d.prop);
    println!(
        "\ndirect analyzer agrees on append/3 ({} models).",
        d.prop.count()
    );

    // --- 3. Magic sets + semi-naive bottom-up (Coral stand-in) ---------
    let (rules, _) = transform_program(&program, IffMode::Builtin)?;
    let mut bottom_up = BottomUp::new(rules);
    bottom_up.run()?;
    let f = tablog_term::Functor {
        name: tablog_term::intern("gp$append"),
        arity: 3,
    };
    println!(
        "bottom-up evaluation derived {} gp$append tuples in {} iterations.",
        bottom_up.relation(f).len(),
        bottom_up.iterations(),
    );
    Ok(())
}
