//! Hindley–Milner type analysis (the Section 6.1 extension): type
//! inference as equality-constraint solving with occur-check unification
//! over ordinary first-order terms — no tabling required.
//!
//! Run with `cargo run --example type_inference`.

use tablog_core::types::infer_types;
use tablog_funlang::parse_fun_program;

const PROGRAM: &str = "
    data shape = circle(1) | rect(2);

    id(x) = x;

    ap(nil, ys) = ys;
    ap(x : xs, ys) = x : ap(xs, ys);

    len(nil) = 0;
    len(x : xs) = 1 + len(xs);

    mapdouble(nil) = nil;
    mapdouble(x : xs) = (x + x) : mapdouble(xs);

    zip(nil, ys) = nil;
    zip(x : xs, nil) = nil;
    zip(x : xs, y : ys) = pair(x, y) : zip(xs, ys);

    tsum(leaf) = 0;
    tsum(node(l, v, r)) = tsum(l) + v + tsum(r);

    area(circle(r)) = 3 * r * r;
    area(rect(w, h)) = w * h;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = parse_fun_program(PROGRAM)?;
    let report = infer_types(&prog)?;
    println!("inferred type schemes:");
    for scheme in report.schemes() {
        println!("  {}", scheme.render());
    }

    // Polymorphism: id is used at different types without conflict.
    let id = report.scheme("id").expect("id typed");
    assert_eq!(id.render(), "id : (A) -> A");

    // A type error is a failed unification, reported with its context.
    let bad = parse_fun_program("broken(x) = if x == 0 then 1 else nil;")?;
    match infer_types(&bad) {
        Err(e) => println!("\nill-typed program rejected as expected:\n  {e}"),
        Ok(_) => unreachable!("broken should not type-check"),
    }

    // Occur check in action: x : x would need the infinite type
    // A = list(A).
    let cyclic = parse_fun_program("selfish(x) = x : x;")?;
    match infer_types(&cyclic) {
        Err(e) => println!("\ninfinite type rejected by the occur check:\n  {e}"),
        Ok(_) => unreachable!("selfish should not type-check"),
    }
    Ok(())
}
