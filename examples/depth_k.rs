//! Depth-k groundness analysis (the paper's Section 5): a non-enumerative
//! abstract domain of depth-bounded terms with γ ("all ground terms"),
//! built on the engine's call-abstraction and answer-widening hooks.
//!
//! Run with `cargo run --example depth_k`.

use tablog_core::depthk::DepthKAnalyzer;
use tablog_syntax::term_to_string;

const PROGRAM: &str = "
    % Peano arithmetic: the Herbrand model is infinite, so this analysis
    % only terminates because answers are widened at depth k.
    nat(0).
    nat(s(X)) :- nat(X).

    plus(0, Y, Y) :- nat(Y).
    plus(s(X), Y, s(Z)) :- plus(X, Y, Z).

    double(X, Z) :- plus(X, X, Z).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for k in [1, 2, 3] {
        let report = DepthKAnalyzer::new(k).analyze_source(PROGRAM)?;
        println!("--- k = {k} ---");
        for p in report.predicates() {
            let answers: Vec<String> = p
                .answers
                .iter()
                .map(|row| {
                    let rendered: Vec<String> = row.iter().map(term_to_string).collect();
                    format!("({})", rendered.join(", "))
                })
                .collect();
            println!(
                "  {}/{}: ground={:?}, {} abstract answers",
                p.name,
                p.arity,
                p.definitely_ground,
                answers.len()
            );
            for a in answers.iter().take(6) {
                println!("      {a}");
            }
            if answers.len() > 6 {
                println!("      … and {} more", answers.len() - 6);
            }
        }
        println!(
            "  fixpoint in {} steps, {} bytes of tables\n",
            report.stats.steps,
            report.table_bytes()
        );
    }

    // Deeper k keeps more structure: the abstract answers of nat/1 grow
    // from {0, s(γ-ish)} towards the concrete model, while staying finite.
    let shallow = DepthKAnalyzer::new(1).analyze_source(PROGRAM)?;
    let deep = DepthKAnalyzer::new(3).analyze_source(PROGRAM)?;
    let n1 = shallow.result("nat", 1).expect("nat").answers.len();
    let n3 = deep.result("nat", 1).expect("nat").answers.len();
    println!("nat/1 abstract answers: k=1 gives {n1}, k=3 gives {n3} (more precision)");
    Ok(())
}
