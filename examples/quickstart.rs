//! Quickstart: load a tabled logic program and query it.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Tabling is what makes the declarative-analysis story of the paper work:
//! the left-recursive `path/2` below loops forever under plain Prolog but
//! terminates under tabled evaluation, and the engine records every call
//! and answer in inspectable tables.

use tablog_engine::Engine;
use tablog_term::Functor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        :- table path/2.
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).

        edge(a, b).
        edge(b, c).
        edge(c, d).
        edge(d, b).      % a cycle: b -> c -> d -> b
    ";
    let engine = Engine::from_source(source)?;

    // A query with variables: all nodes reachable from `a`.
    let solutions = engine.solve("path(a, Where)")?;
    println!("reachable from a:");
    for row in solutions.to_strings() {
        println!("  {row}");
    }

    // The tables themselves are available: calls and answers per subgoal.
    let mut bindings = tablog_term::Bindings::new();
    let (goal, _) = tablog_syntax::parse_term("path(b, X)", &mut bindings)?;
    let evaluation = engine.evaluate(std::slice::from_ref(&goal), &[], &bindings)?;
    println!("\ntables after solving path(b, X):");
    for view in evaluation.subgoals_of(Functor::new("path", 2)) {
        println!(
            "  call {} has {} answers ({} bytes of table space)",
            tablog_syntax::term_to_string(&view.call_term()),
            view.num_answers(),
            view.table_bytes(),
        );
        for answer in view.answers() {
            println!("    {}", tablog_syntax::term_to_string(&answer));
        }
    }
    println!("\nengine statistics: {:?}", evaluation.stats());
    Ok(())
}
