% Figure 1/2(b) of the paper: the abstract (Prop) version of append.
%
% gp_ap/3 is the groundness abstraction of app/3 produced by the Figure 1
% transformation; '$iff'(A, B1, …, Bn) is the engine builtin enumerating
% the truth table of A <-> B1 /\ … /\ Bn. The success set of the fully
% open call gp_ap(X, Y, Z) is the truth table of (X /\ Y) <-> Z.
%
% Try:
%   tablog query examples/figure1.pl 'gp_ap(X, Y, Z)'
%   tablog stats examples/figure1.pl 'gp_ap(X, Y, Z)' --json

:- table gp_ap/3.

gp_ap(X1, X2, X3) :- '$iff'(X1), '$iff'(X2, X3).
gp_ap(X1, X2, X3) :-
    '$iff'(X1, X, Xs), '$iff'(X3, X, Zs), gp_ap(Xs, X2, Zs).
